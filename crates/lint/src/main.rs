//! `fpga_lint` — scan the workspace (or one file) and fail on any
//! invariant-rule diagnostic. See the library docs for the rules.
//!
//! ```text
//! fpga_lint [--root <dir>] [--json] [--waiver-budget <rule>=<N>]...
//! fpga_lint --check-file <path> --as <rel>  # lint one file under a logical path
//! fpga_lint --list-rules
//! ```
//!
//! Workspace mode prints a cone report (functions reachable from each
//! pinned entry point) and a per-rule summary to stderr; `--json` emits
//! machine-readable diagnostics on stdout for CI to consume.
//! `--waiver-budget` tolerates up to N diagnostics of one rule in *aux*
//! paths (integration tests and benches) — bench timing code reads
//! `Instant` legitimately and a per-site waiver in every bench body
//! would drown the signal; the budget keeps the count bounded instead.
//!
//! Exit status: 0 clean, 1 diagnostics found, 2 usage or I/O error.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

use fpga_lint::{aux_path, rule_code, Diagnostic};

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(0) => ExitCode::SUCCESS,
        Ok(count) => {
            eprintln!("fpga_lint: {count} diagnostic(s)");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("fpga_lint: error: {e}");
            ExitCode::from(2)
        }
    }
}

fn run(args: Vec<String>) -> Result<usize, String> {
    let mut root = PathBuf::from(".");
    let mut check_file: Option<PathBuf> = None;
    let mut logical: Option<String> = None;
    let mut json = false;
    let mut budgets: BTreeMap<String, usize> = BTreeMap::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => root = PathBuf::from(next_value(&mut it, "--root")?),
            "--check-file" => check_file = Some(PathBuf::from(next_value(&mut it, "--check-file")?)),
            "--as" => logical = Some(next_value(&mut it, "--as")?),
            "--json" => json = true,
            "--waiver-budget" => {
                let spec = next_value(&mut it, "--waiver-budget")?;
                let (rule, n) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--waiver-budget wants <rule>=<N>, got `{spec}`"))?;
                if !fpga_lint::RULES.iter().any(|r| r.name == rule) {
                    return Err(format!("--waiver-budget: unknown rule `{rule}`"));
                }
                let n: usize = n
                    .parse()
                    .map_err(|_| format!("--waiver-budget: bad count in `{spec}`"))?;
                budgets.insert(rule.to_string(), n);
            }
            "--list-rules" => {
                for r in fpga_lint::RULES {
                    println!("{:<6} {:<26} {}", r.code, r.name, r.what);
                }
                return Ok(0);
            }
            "--help" | "-h" => {
                println!(
                    "usage: fpga_lint [--root <dir>] [--json] [--waiver-budget <rule>=<N>]... \
                     | --check-file <path> --as <workspace-rel-path> [--json] | --list-rules"
                );
                return Ok(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }

    let mut cone_json = String::from("null");
    let (diags, snippet_root) = if let Some(path) = check_file {
        let logical = logical.ok_or("--check-file needs --as <workspace-relative-path>")?;
        let source = std::fs::read_to_string(&path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        let diags = fpga_lint::lint_source(&logical, &source);
        // Snippets come from the physical file, whatever logical path
        // the rules saw it under.
        (diags, SnippetRoot::Single(path, logical))
    } else {
        let report = fpga_lint::lint_workspace_report(&root)
            .map_err(|e| format!("{}: {e}", root.display()))?;
        cone_json = render_cone_json(&report.cone);
        report_cone(&report.cone);
        (report.diagnostics, SnippetRoot::Workspace(root))
    };

    // Partition by the aux-path waiver budget: budgeted rules tolerate
    // up to N hits in tests/benches; the moment a rule exceeds its
    // budget, *all* its aux hits fail so CI points at every site.
    let mut aux_counts: BTreeMap<&str, usize> = BTreeMap::new();
    for d in &diags {
        if aux_path(&d.path) && budgets.contains_key(d.rule) {
            *aux_counts.entry(d.rule).or_default() += 1;
        }
    }
    let within_budget = |d: &Diagnostic| {
        aux_path(&d.path)
            && budgets
                .get(d.rule)
                .is_some_and(|cap| aux_counts.get(d.rule).is_some_and(|n| n <= cap))
    };
    let (tolerated, failing): (Vec<&Diagnostic>, Vec<&Diagnostic>) =
        diags.iter().partition(|d| within_budget(d));

    if json {
        println!(
            "{}",
            render_json(&failing, &tolerated, &cone_json, &snippet_root)
        );
    } else {
        for d in &failing {
            println!("{d}");
        }
    }
    report_summary(&failing, &tolerated, &budgets, &aux_counts);
    Ok(failing.len())
}

enum SnippetRoot {
    Workspace(PathBuf),
    Single(PathBuf, String),
}

impl SnippetRoot {
    fn physical(&self, logical: &str) -> Option<PathBuf> {
        match self {
            SnippetRoot::Workspace(root) => Some(root.join(logical)),
            SnippetRoot::Single(path, as_logical) => {
                (as_logical == logical).then(|| path.clone())
            }
        }
    }
}

fn report_cone(cone: &fpga_lint::callgraph::Cone) {
    eprintln!(
        "fpga_lint: hot-path cone: {} function(s) across {} file(s)",
        cone.fn_count,
        cone.file_count()
    );
    for stat in &cone.entry_stats {
        match stat.reachable {
            Some(n) => eprintln!("  {:<48} {n:>4} reachable", stat.entry),
            None => eprintln!("  {:<48} MISSING (see determinism-cone)", stat.entry),
        }
    }
}

fn report_summary(
    failing: &[&Diagnostic],
    tolerated: &[&Diagnostic],
    budgets: &BTreeMap<String, usize>,
    aux_counts: &BTreeMap<&str, usize>,
) {
    let mut per_rule: BTreeMap<&str, usize> = BTreeMap::new();
    for d in failing {
        *per_rule.entry(d.rule).or_default() += 1;
    }
    if per_rule.is_empty() && tolerated.is_empty() {
        eprintln!("fpga_lint: clean");
    }
    for (rule, n) in &per_rule {
        eprintln!("fpga_lint: {:<6} {rule:<26} {n} violation(s)", rule_code(rule));
    }
    for (rule, cap) in budgets {
        let used = aux_counts.get(rule.as_str()).copied().unwrap_or(0);
        if used > 0 {
            let status = if used <= *cap { "within" } else { "OVER" };
            eprintln!(
                "fpga_lint: aux budget {rule}: {used}/{cap} used ({status})"
            );
        }
    }
}

/// Minimal JSON string escaping — the std library has no serializer and
/// the crate is dependency-free by design.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn render_cone_json(cone: &fpga_lint::callgraph::Cone) -> String {
    let entries: Vec<String> = cone
        .entry_stats
        .iter()
        .map(|s| {
            format!(
                "{{\"entry\":\"{}\",\"reachable\":{}}}",
                esc(&s.entry),
                s.reachable.map_or("null".to_string(), |n| n.to_string())
            )
        })
        .collect();
    format!(
        "{{\"functions\":{},\"files\":{},\"entries\":[{}]}}",
        cone.fn_count,
        cone.file_count(),
        entries.join(",")
    )
}

fn render_json(
    failing: &[&Diagnostic],
    tolerated: &[&Diagnostic],
    cone_json: &str,
    snippets: &SnippetRoot,
) -> String {
    let mut cache: BTreeMap<String, Option<Vec<String>>> = BTreeMap::new();
    let mut snippet = |path: &str, line: usize| -> String {
        let lines = cache.entry(path.to_string()).or_insert_with(|| {
            let physical = snippets.physical(path)?;
            let text = std::fs::read_to_string(physical).ok()?;
            Some(text.lines().map(|l| l.trim().to_string()).collect())
        });
        lines
            .as_ref()
            .and_then(|ls| ls.get(line.saturating_sub(1)))
            .cloned()
            .unwrap_or_default()
    };
    let mut render = |d: &Diagnostic, budget_waived: bool| -> String {
        format!(
            "{{\"code\":\"{}\",\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"snippet\":\"{}\",\
             \"message\":\"{}\",\"hint\":\"{}\",\"budget_waived\":{}}}",
            esc(rule_code(d.rule)),
            esc(d.rule),
            esc(&d.path),
            d.line,
            esc(&snippet(&d.path, d.line)),
            esc(&d.message),
            esc(&d.hint),
            budget_waived
        )
    };
    let mut items: Vec<String> = failing.iter().map(|d| render(d, false)).collect();
    items.extend(tolerated.iter().map(|d| render(d, true)));
    let mut summary: BTreeMap<&str, usize> = BTreeMap::new();
    for d in failing {
        *summary.entry(d.rule).or_default() += 1;
    }
    let summary_items: Vec<String> = summary
        .iter()
        .map(|(rule, n)| format!("\"{}\":{n}", esc(rule)))
        .collect();
    format!(
        "{{\"cone\":{cone_json},\"summary\":{{{}}},\"failing\":{},\"diagnostics\":[{}]}}",
        summary_items.join(","),
        failing.len(),
        items.join(",")
    )
}

fn next_value(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    it.next().ok_or_else(|| format!("{flag} needs a value"))
}
