//! `fpga_lint` — scan the workspace (or one file) and fail on any
//! invariant-rule diagnostic. See the library docs for the rules.
//!
//! ```text
//! fpga_lint [--root <dir>]                  # lint the whole workspace
//! fpga_lint --check-file <path> --as <rel>  # lint one file under a logical path
//! fpga_lint --list-rules
//! ```
//!
//! Exit status: 0 clean, 1 diagnostics found, 2 usage or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(0) => ExitCode::SUCCESS,
        Ok(count) => {
            eprintln!("fpga_lint: {count} diagnostic(s)");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("fpga_lint: error: {e}");
            ExitCode::from(2)
        }
    }
}

fn run(args: Vec<String>) -> Result<usize, String> {
    let mut root = PathBuf::from(".");
    let mut check_file: Option<PathBuf> = None;
    let mut logical: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => root = PathBuf::from(next_value(&mut it, "--root")?),
            "--check-file" => check_file = Some(PathBuf::from(next_value(&mut it, "--check-file")?)),
            "--as" => logical = Some(next_value(&mut it, "--as")?),
            "--list-rules" => {
                for (name, what) in fpga_lint::RULES {
                    println!("{name:<22} {what}");
                }
                return Ok(0);
            }
            "--help" | "-h" => {
                println!(
                    "usage: fpga_lint [--root <dir>] | --check-file <path> --as <workspace-rel-path> | --list-rules"
                );
                return Ok(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }

    let diags = if let Some(path) = check_file {
        let logical = logical.ok_or("--check-file needs --as <workspace-relative-path>")?;
        let source = std::fs::read_to_string(&path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        fpga_lint::lint_source(&logical, &source)
    } else {
        fpga_lint::lint_workspace(&root).map_err(|e| format!("{}: {e}", root.display()))?
    };
    for d in &diags {
        println!("{d}");
    }
    Ok(diags.len())
}

fn next_value(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    it.next().ok_or_else(|| format!("{flag} needs a value"))
}
