//! The workspace call graph and the **hot-path cone**: every function
//! transitively reachable from the parallel routing entry points.
//!
//! The cone is the scope of the determinism rule family
//! ([`crate::rules::determinism`]) and the cone-derived scopes of the
//! readset and panic-hygiene rules: code a speculative or negotiated
//! route pass can execute must be free of nondeterminism sources and
//! panics, and code it cannot reach need not be. Entry points are
//! pinned by `(file, fn)` below — the batch engine's speculate/commit,
//! the wavefront scheduler's route pass, the negotiated-congestion
//! route phase, and the plain/guided Dijkstra kernels — so a refactor
//! that renames or moves one fails the lint loudly
//! ([`missing_entry_points`]) instead of silently shrinking the cone.
//!
//! Resolution is by name, deliberately over-approximate: `.m(` reaches
//! every `fn m` on any `impl`, `T::m(` prefers `impl T` methods and
//! falls back to free functions (covering module-qualified calls), and
//! a bare `m(` reaches every free `fn m`. Over-approximation can only
//! widen the cone — more code checked, never less. The false-*negative*
//! shapes (edges the graph cannot see) are function pointers/closures
//! passed as values and then called through a variable, trait-object
//! dispatch through a `dyn` receiver, and calls manufactured by macros;
//! DESIGN.md §5i argues why those stay sound-enough here.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::items::{CallRef, FileItems};

/// The parallel routing entry points seeding the cone, as
/// `(workspace-relative file, fn name)`.
pub const ENTRY_POINTS: &[(&str, &str)] = &[
    // Batch engine: speculative routing + in-order conflict-checked commit.
    ("crates/fpga/src/parallel.rs", "route_pass_parallel"),
    ("crates/fpga/src/parallel.rs", "speculate"),
    ("crates/fpga/src/parallel.rs", "commit_one"),
    // Wavefront scheduler: the whole speculate+commit pass.
    ("crates/fpga/src/sched.rs", "route_pass_wavefront"),
    // Negotiated congestion: per-iteration parallel route phase + cost update.
    ("crates/fpga/src/pathfinder.rs", "route_negotiated"),
    // The plain and guided shortest-path kernels.
    ("crates/graph/src/dijkstra.rs", "run"),
    ("crates/graph/src/dijkstra.rs", "run_guided"),
    ("crates/graph/src/dijkstra.rs", "run_to_targets"),
    ("crates/graph/src/dijkstra.rs", "run_to_targets_guided"),
    ("crates/graph/src/dijkstra.rs", "run_to_targets_with"),
];

/// Only library code can sit under the route phases: the call-graph
/// universe is the four library crates. Binaries, benches, tests, and
/// the experiment drivers *call into* these crates, never the reverse,
/// so indexing them would only manufacture false edges through shared
/// helper names.
pub fn in_universe(path: &str) -> bool {
    (path.starts_with("crates/graph/src/")
        || path.starts_with("crates/core/src/")
        || path.starts_with("crates/fpga/src/")
        || path.starts_with("crates/trace/src/"))
        && path.ends_with(".rs")
}

/// A function's identity in the graph: index into the flattened fn list.
type FnId = usize;

#[derive(Debug, Clone)]
struct FnNode {
    file: String,
    name: String,
    self_ty: Option<String>,
    start_line: usize,
    end_line: usize,
    calls: Vec<CallRef>,
}

/// Per-entry-point reachability, for the cone report.
#[derive(Debug, Clone)]
pub struct EntryStat {
    /// `file::fn` label of the entry point.
    pub entry: String,
    /// Functions reachable from it (entry included), or `None` when the
    /// entry point was not found in the workspace.
    pub reachable: Option<usize>,
}

/// The computed hot-path cone.
#[derive(Debug, Clone, Default)]
pub struct Cone {
    /// Per file: the 1-based line spans of cone functions, sorted.
    spans: BTreeMap<String, Vec<(usize, usize)>>,
    /// Per-entry reachability for reporting.
    pub entry_stats: Vec<EntryStat>,
    /// Total distinct functions in the cone.
    pub fn_count: usize,
}

impl Cone {
    /// The files owning at least one cone function, sorted.
    pub fn files(&self) -> impl Iterator<Item = &str> {
        self.spans.keys().map(String::as_str)
    }

    /// Number of files owning at least one cone function.
    pub fn file_count(&self) -> usize {
        self.spans.len()
    }

    /// Number of cone functions in `path`.
    pub fn fns_in_file(&self, path: &str) -> usize {
        self.spans.get(path).map_or(0, Vec::len)
    }

    /// `true` if 1-based `line` of `path` falls inside a cone function.
    pub fn contains_line(&self, path: &str, line: usize) -> bool {
        self.spans
            .get(path)
            .is_some_and(|spans| spans.iter().any(|&(a, b)| (a..=b).contains(&line)))
    }

    /// Entry points whose `(file, fn)` anchor no longer exists — a
    /// renamed or moved entry point silently seeds nothing, so the
    /// driver turns each into a diagnostic.
    pub fn missing_entry_points(&self) -> impl Iterator<Item = &str> {
        self.entry_stats
            .iter()
            .filter(|s| s.reachable.is_none())
            .map(|s| s.entry.as_str())
    }
}

/// Builds the call graph over `(path, items)` pairs (universe files
/// only) and walks the cone out of [`ENTRY_POINTS`].
pub fn compute_cone(files: &BTreeMap<String, FileItems>) -> Cone {
    // --- flatten and index ------------------------------------------------
    let mut nodes: Vec<FnNode> = Vec::new();
    for (path, items) in files {
        for f in &items.fns {
            nodes.push(FnNode {
                file: path.clone(),
                name: f.name.clone(),
                self_ty: f.self_ty.clone(),
                start_line: f.start_line,
                end_line: f.end_line,
                calls: f.calls.iter().map(|c| c.callee.clone()).collect(),
            });
        }
    }
    let mut free: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
    let mut methods: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
    let mut typed: BTreeMap<(&str, &str), Vec<FnId>> = BTreeMap::new();
    for (id, n) in nodes.iter().enumerate() {
        match &n.self_ty {
            Some(ty) => {
                methods.entry(&n.name).or_default().push(id);
                typed.entry((ty.as_str(), &n.name)).or_default().push(id);
            }
            None => free.entry(&n.name).or_default().push(id),
        }
    }

    let resolve = |call: &CallRef, out: &mut Vec<FnId>| match call {
        CallRef::Qualified(q, m) => {
            // `Self::helper(` cannot know its impl here; treat it like a
            // method call. Otherwise prefer `impl q` methods and fall
            // back to free fns (module-qualified call).
            if q == "Self" || q == "self" {
                if let Some(ids) = methods.get(m.as_str()) {
                    out.extend_from_slice(ids);
                }
                if let Some(ids) = free.get(m.as_str()) {
                    out.extend_from_slice(ids);
                }
            } else if let Some(ids) = typed.get(&(q.as_str(), m.as_str())) {
                out.extend_from_slice(ids);
            } else if let Some(ids) = free.get(m.as_str()) {
                out.extend_from_slice(ids);
            }
        }
        CallRef::Method(m) => {
            if let Some(ids) = methods.get(m.as_str()) {
                out.extend_from_slice(ids);
            }
        }
        CallRef::Bare(m) => {
            if let Some(ids) = free.get(m.as_str()) {
                out.extend_from_slice(ids);
            }
            // A bare call can also be an associated fn brought into
            // scope via `use Type::method` — rare enough here that the
            // free-fn table suffices; documented false-negative shape.
        }
    };

    // --- BFS per entry (stats), then union --------------------------------
    let mut cone_ids: BTreeSet<FnId> = BTreeSet::new();
    let mut entry_stats = Vec::new();
    for &(file, name) in ENTRY_POINTS {
        let seeds: Vec<FnId> = nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.file == file && n.name == name)
            .map(|(id, _)| id)
            .collect();
        let label = format!("{file}::{name}");
        if seeds.is_empty() {
            entry_stats.push(EntryStat {
                entry: label,
                reachable: None,
            });
            continue;
        }
        let mut seen: BTreeSet<FnId> = seeds.iter().copied().collect();
        let mut queue: VecDeque<FnId> = seeds.into_iter().collect();
        while let Some(id) = queue.pop_front() {
            let mut targets = Vec::new();
            for call in &nodes[id].calls {
                resolve(call, &mut targets);
            }
            for t in targets {
                if seen.insert(t) {
                    queue.push_back(t);
                }
            }
        }
        entry_stats.push(EntryStat {
            entry: label,
            reachable: Some(seen.len()),
        });
        cone_ids.extend(seen);
    }

    // --- project to line spans -------------------------------------------
    let mut spans: BTreeMap<String, Vec<(usize, usize)>> = BTreeMap::new();
    for &id in &cone_ids {
        let n = &nodes[id];
        spans
            .entry(n.file.clone())
            .or_default()
            .push((n.start_line, n.end_line));
    }
    for s in spans.values_mut() {
        s.sort_unstable();
    }
    Cone {
        spans,
        entry_stats,
        fn_count: cone_ids.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::extract;
    use crate::lexer::lex;

    fn workspace(files: &[(&str, &str)]) -> BTreeMap<String, FileItems> {
        files
            .iter()
            .map(|(p, src)| ((*p).to_string(), extract(&lex(src))))
            .collect()
    }

    #[test]
    fn cone_reaches_through_bare_method_and_qualified_calls() {
        let files = workspace(&[
            (
                "crates/fpga/src/pathfinder.rs",
                "pub fn route_negotiated() {\n route_all();\n}\n\
                 fn route_all() {\n let sp = ShortestPaths::run(&g, s);\n sp.settle();\n}\n\
                 fn cold_helper() { never_called(); }\n",
            ),
            (
                "crates/graph/src/dijkstra.rs",
                "impl ShortestPaths {\n pub fn run() { inner_loop(); }\n fn settle(&self) {}\n}\n\
                 fn inner_loop() {}\n",
            ),
            (
                "crates/fpga/src/viz.rs",
                "pub fn render() { draw(); }\nfn draw() {}\n",
            ),
        ]);
        let cone = compute_cone(&files);
        // route_negotiated → route_all → {ShortestPaths::run → inner_loop, settle}.
        assert!(cone.contains_line("crates/fpga/src/pathfinder.rs", 1));
        assert!(cone.contains_line("crates/fpga/src/pathfinder.rs", 5));
        assert!(cone.contains_line("crates/graph/src/dijkstra.rs", 2));
        assert!(cone.contains_line("crates/graph/src/dijkstra.rs", 5), "inner_loop");
        assert!(
            !cone.contains_line("crates/fpga/src/viz.rs", 1),
            "unreached files stay out of the cone"
        );
        assert!(
            !cone.contains_line("crates/fpga/src/pathfinder.rs", 8),
            "cold_helper is not reachable"
        );
    }

    #[test]
    fn entry_stats_report_per_entry_counts_and_missing_entries() {
        let files = workspace(&[(
            "crates/fpga/src/pathfinder.rs",
            "pub fn route_negotiated() { leaf(); }\nfn leaf() {}\n",
        )]);
        let cone = compute_cone(&files);
        let pf = cone
            .entry_stats
            .iter()
            .find(|s| s.entry.ends_with("route_negotiated"))
            .unwrap();
        assert_eq!(pf.reachable, Some(2));
        // Every other pinned entry point is absent from this mini-workspace.
        let missing: Vec<&str> = cone.missing_entry_points().collect();
        assert!(missing.iter().any(|e| e.ends_with("route_pass_wavefront")));
        assert_eq!(missing.len(), ENTRY_POINTS.len() - 1);
        assert_eq!(cone.fn_count, 2);
        assert_eq!(cone.file_count(), 1);
    }

    #[test]
    fn universe_excludes_benches_tests_and_bins() {
        assert!(in_universe("crates/graph/src/dijkstra.rs"));
        assert!(in_universe("crates/trace/src/collector.rs"));
        assert!(!in_universe("crates/bench/benches/kernel.rs"));
        assert!(!in_universe("tests/pathfinder.rs"));
        assert!(!in_universe("src/bin/fpga_route.rs"));
        assert!(!in_universe("crates/fpga/tests/x.rs"));
        assert!(!in_universe("crates/experiments/src/table2.rs"));
    }

    #[test]
    fn self_qualified_calls_resolve_to_methods() {
        let files = workspace(&[(
            "crates/fpga/src/sched.rs",
            "impl Sched {\n pub fn route_pass_wavefront(&self) { Self::assign(); }\n fn assign() { leaf_fn(); }\n}\nfn leaf_fn() {}\n",
        )]);
        let cone = compute_cone(&files);
        assert!(cone.contains_line("crates/fpga/src/sched.rs", 3), "Self::assign reached");
        assert!(cone.contains_line("crates/fpga/src/sched.rs", 5), "leaf_fn reached");
    }
}
