//! Rule `readset-discipline`: shortest-path and distance-graph entry
//! points may only be called from modules vetted as readset-recording.
//!
//! The speculative engines accept a worker's route only if nothing in
//! its recorded read set was invalidated by a concurrent commit
//! (DESIGN.md §5c). Recording happens inside the graph crate's Dijkstra
//! — but only for reads that actually flow through it. A new
//! construction that grabs distances some other way (a cached
//! `DistanceOracle` hit, a hand-rolled search) silently under-reports
//! its reads and the conflict check stops being sound. The mechanical
//! remedy: every call site of a distance entry point outside
//! `crates/graph` must sit in a module on the vetted allowlist below,
//! so adding a construction forces a human to confirm its reads are
//! recorded before the workspace lints clean.

use crate::{Diagnostic, FileCtx};

/// Rule name, as used in `allow(...)` markers.
pub const RULE: &str = "readset-discipline";

/// Modules vetted as readset-recording: every shortest-path query they
/// issue flows through the recording Dijkstra entry points
/// (`ShortestPaths::run`/`run_to_targets`,
/// `TerminalDistances::compute`/`compute_to_targets`), so a speculative
/// route through them records a complete read set. Extend this list
/// only after checking a new module's distance queries all record.
pub const READSET_RECORDING: &[&str] = &[
    "crates/core/src/kmb.rs",
    "crates/core/src/zel.rs",
    "crates/core/src/pfa.rs",
    "crates/core/src/dom.rs",
    "crates/core/src/djka.rs",
    "crates/core/src/igmst.rs",
    "crates/core/src/idom.rs",
    "crates/core/src/mehlhorn.rs",
    "crates/core/src/heuristic.rs",
    "crates/core/src/dominance.rs",
    "crates/core/src/tree.rs",
    "crates/core/src/metrics.rs",
    "crates/core/src/exact.rs",
    "crates/core/src/tradeoff.rs",
];

/// Single-file fallback only (no call graph available there):
/// directories whose code never runs under speculation — experiment
/// drivers, benches, tests, examples, and CLI binaries route on the
/// live graph sequentially, so their reads need no recording. In
/// workspace mode this hand-pinned list is replaced by the hot-path
/// cone: a call site is checked iff it sits in a function reachable
/// from a speculate/commit entry point (`crate::callgraph`), which is
/// exactly the code that can run under speculation.
fn exempt_path(path: &str) -> bool {
    path.starts_with("crates/graph/")
        || path.starts_with("crates/lint/")
        || path.starts_with("crates/experiments/")
        || path.starts_with("crates/bench/")
        || path.starts_with("tests/")
        || path.starts_with("examples/")
        || path.contains("/tests/")
        || path.contains("/benches/")
        || path.contains("/examples/")
        || path.contains("/bin/")
}

/// The entry points whose callers must be vetted: `(type, method)`.
/// A `None` type matches a bare function call. The goal-oriented (A*)
/// variants record read sets exactly like their plain counterparts
/// (the guided kernel settles the same nodes it would have read-set
/// recorded anyway, plus an early-exit records what it actually read),
/// but their *callers* need the same vetting: a construction that
/// grabs guided distances still has to flow them through recording.
const ENTRY_POINTS: &[(Option<&str>, &str)] = &[
    (Some("ShortestPaths"), "run"),
    (Some("ShortestPaths"), "run_guided"),
    (Some("ShortestPaths"), "run_to_targets"),
    (Some("ShortestPaths"), "run_to_targets_guided"),
    (Some("TerminalDistances"), "compute"),
    (Some("TerminalDistances"), "compute_to_targets"),
    (Some("TerminalDistances"), "compute_to_targets_guided"),
    (Some("DistanceOracle"), "paths"),
    (None, "minpath"),
    (None, "minpath_guided"),
];

pub fn check(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    // The graph crate hosts the recording machinery itself, and the
    // vetted modules record by construction — both exempt in any mode.
    if ctx.path.starts_with("crates/graph/")
        || ctx.path.starts_with("crates/lint/")
        || READSET_RECORDING.contains(&ctx.path)
    {
        return Vec::new();
    }
    if matches!(ctx.scope, crate::ScopeSource::SingleFile) && exempt_path(ctx.path) {
        return Vec::new();
    }
    let code: Vec<usize> = ctx.code_indices().collect();
    let mut diags = Vec::new();
    for (k, &i) in code.iter().enumerate() {
        if ctx.in_test[i] {
            continue;
        }
        // Workspace mode: only call sites inside the hot-path cone can
        // execute under speculation; everything else is sequential.
        if matches!(ctx.scope, crate::ScopeSource::Workspace) && !ctx.in_cone[i] {
            continue;
        }
        let tok = &ctx.tokens[i];
        let next = |o: usize| code.get(k + o).map(|&j| &ctx.tokens[j]);
        for &(ty, method) in ENTRY_POINTS {
            let hit = match ty {
                Some(ty) => {
                    tok.is_ident(ty)
                        && next(1).is_some_and(|t| t.is_punct("::"))
                        && next(2).is_some_and(|t| t.is_ident(method))
                }
                None => {
                    tok.is_ident(method)
                        && next(1).is_some_and(|t| t.is_punct("("))
                        // `fn minpath(` is a definition, not a call.
                        && k.checked_sub(1)
                            .map(|p| &ctx.tokens[code[p]])
                            .is_none_or(|t| !t.is_ident("fn"))
                }
            };
            if hit {
                let name = ty.map_or_else(
                    || method.to_string(),
                    |ty| format!("{ty}::{method}"),
                );
                diags.push(Diagnostic {
                    path: ctx.path.to_string(),
                    line: tok.line,
                    rule: RULE,
                    message: format!(
                        "distance entry point `{name}` called outside a readset-recording module"
                    ),
                    hint: "verify every read records (DESIGN.md §5c) and add this module to \
                           READSET_RECORDING, or waive with `// lint: allow(readset-discipline): …`"
                        .to_string(),
                });
                break;
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint_source;

    #[test]
    fn fires_outside_the_allowlist_and_not_inside() {
        let src = "fn f() { let sp = ShortestPaths::run(&g, s); }\n";
        let diags = lint_source("crates/fpga/src/newmod.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RULE);
        assert!(lint_source("crates/core/src/kmb.rs", src).is_empty());
        assert!(lint_source("crates/experiments/src/table9.rs", src).is_empty());
        assert!(lint_source("crates/fpga/tests/x.rs", src).is_empty());
    }

    #[test]
    fn bare_minpath_call_fires_but_definition_does_not() {
        let call = "fn f() { let d = minpath(&g, u, v)?; }\n";
        assert_eq!(lint_source("crates/fpga/src/newmod.rs", call).len(), 1);
        let def = "pub fn minpath(g: &G, u: NodeId, v: NodeId) {}\n";
        assert!(lint_source("crates/fpga/src/newmod.rs", def).is_empty());
    }

    #[test]
    fn guided_variants_fire_like_their_plain_counterparts() {
        for src in [
            "fn f() { let sp = ShortestPaths::run_guided(&g, s, &pot); }\n",
            "fn f() { let sp = ShortestPaths::run_to_targets_guided(&g, s, ts, &pot); }\n",
            "fn f() { let td = TerminalDistances::compute_to_targets_guided(&g, ts, None, &pot); }\n",
            "fn f() { let d = minpath_guided(&g, u, v, &pot)?; }\n",
        ] {
            let diags = lint_source("crates/fpga/src/newmod.rs", src);
            assert_eq!(diags.len(), 1, "guided entry point must be vetted: {src}");
            assert_eq!(diags[0].rule, RULE);
            // Vetted modules and the graph crate itself stay clean.
            assert!(lint_source("crates/core/src/kmb.rs", src).is_empty());
            assert!(lint_source("crates/graph/src/lowerbound.rs", src).is_empty());
        }
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n fn t() { ShortestPaths::run(&g, s).unwrap(); }\n}\n";
        assert!(lint_source("crates/fpga/src/newmod.rs", src).is_empty());
    }

    #[test]
    fn allow_marker_waives_with_justification() {
        let src = "fn f() {\n // lint: allow(readset-discipline): baseline router never speculates\n let sp = ShortestPaths::run(&g, s);\n}\n";
        assert!(lint_source("crates/fpga/src/newmod.rs", src).is_empty());
    }
}
