//! Rules `unsafe-forbid` and `panic-hygiene`: no unsafe code anywhere,
//! no panicking extractors on the hot path.
//!
//! `unsafe-forbid` keeps `#![forbid(unsafe_code)]` at every crate root
//! (lib.rs, main.rs, `src/bin/*.rs`) and flags any utterance of the
//! `unsafe` keyword: the engine's thread-safety argument is built on
//! safe-Rust aliasing guarantees, and a single `unsafe` block would let
//! a worker alias the shared graph behind the conflict check's back.
//!
//! `panic-hygiene` bans `.unwrap()`/`.expect(` in the hot-path modules
//! (`dijkstra.rs`, `sched.rs`, `router.rs`, `overlay.rs`, `shared.rs`)
//! outside `#[cfg(test)]`. A panic mid-pass on a worker thread poisons
//! the scheduler mutex and deadlocks or aborts the committer — errors
//! there must surface as `RouteError`/`Option` flow, and the few sites
//! where a panic genuinely is the right response (poisoned lock ⇒ a
//! sibling already panicked) carry individual justified allow-markers.

use crate::{Diagnostic, FileCtx};

/// Rule name for the `#![forbid(unsafe_code)]` / `unsafe` checks.
pub const RULE_UNSAFE: &str = "unsafe-forbid";

/// Rule name for the hot-path `.unwrap()`/`.expect()` ban.
pub const RULE_PANIC: &str = "panic-hygiene";

/// The mutex-critical tier: modules where the scheduler lock (or a
/// worker holding work the committer waits on) is live, so *any* panic
/// — even a documented-invariant `.expect()` — deadlocks or aborts the
/// pass. Here both `.unwrap()` and `.expect()` are banned.
///
/// In workspace mode the rule's *scope* is no longer this list but the
/// hot-path cone (`crate::callgraph`): `.unwrap()` is banned in every
/// function reachable from a route entry point (it asserts an invariant
/// without stating one), while `.expect("…")` — the workspace's
/// documented-invariant idiom — stays legal in cone code outside this
/// tier. Single-file mode (no call graph) falls back to this list as
/// the whole scope, as before.
const HOT_PATH_FILES: &[&str] = &[
    "dijkstra.rs",
    "sched.rs",
    "router.rs",
    "overlay.rs",
    "shared.rs",
    "parallel.rs",
    "pathfinder.rs",
];

/// `path` is a crate root that must open with `#![forbid(unsafe_code)]`.
fn is_crate_root(path: &str) -> bool {
    path.ends_with("/lib.rs")
        || path == "lib.rs"
        || path.ends_with("/main.rs")
        || path == "main.rs"
        || path.contains("src/bin/")
}

fn is_hot_path(path: &str, file_name: &str) -> bool {
    HOT_PATH_FILES.contains(&file_name) && path.contains("/src/") && !path.starts_with("crates/lint/")
}

pub fn check(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let code: Vec<usize> = ctx.code_indices().collect();

    // --- unsafe-forbid ---------------------------------------------------
    if is_crate_root(ctx.path) && !has_forbid_unsafe(ctx, &code) {
        diags.push(Diagnostic {
            path: ctx.path.to_string(),
            line: 1,
            rule: RULE_UNSAFE,
            message: "crate root lacks #![forbid(unsafe_code)]".to_string(),
            hint: "add `#![forbid(unsafe_code)]` as the first item — the engine's aliasing \
                   argument assumes safe Rust everywhere"
                .to_string(),
        });
    }
    for &i in &code {
        let tok = &ctx.tokens[i];
        if tok.is_ident("unsafe") {
            diags.push(Diagnostic {
                path: ctx.path.to_string(),
                line: tok.line,
                rule: RULE_UNSAFE,
                message: "`unsafe` is not used in this workspace".to_string(),
                hint: "express this in safe Rust; the shared-graph soundness argument is void \
                       under manual aliasing"
                    .to_string(),
            });
        }
    }

    // --- panic-hygiene ---------------------------------------------------
    let mutex_critical = is_hot_path(ctx.path, ctx.file_name());
    let file_scope = match ctx.scope {
        // Cone masks are per-token; enter the loop whenever the cone
        // touches this file at all (the per-token check gates the rest).
        crate::ScopeSource::Workspace => {
            !ctx.path.starts_with("crates/lint/") && ctx.in_cone.iter().any(|&c| c)
        }
        crate::ScopeSource::SingleFile => mutex_critical,
    };
    if file_scope {
        for (k, &i) in code.iter().enumerate() {
            if ctx.in_test[i] {
                continue;
            }
            if matches!(ctx.scope, crate::ScopeSource::Workspace) && !ctx.in_cone[i] {
                continue;
            }
            let tok = &ctx.tokens[i];
            let next = |o: usize| code.get(k + o).map(|&j| &ctx.tokens[j]);
            if tok.is_punct(".")
                && next(1).is_some_and(|t| t.is_ident("unwrap") || t.is_ident("expect"))
                && next(2).is_some_and(|t| t.is_punct("("))
            {
                let callee = next(1).map_or("unwrap", |t| {
                    if t.is_ident("expect") { "expect" } else { "unwrap" }
                });
                // `.expect("…")` documents its invariant; it stays legal
                // in cone code outside the mutex-critical tier.
                if callee == "expect" && !mutex_critical {
                    continue;
                }
                let line = next(1).map_or(tok.line, |t| t.line);
                let place = if mutex_critical {
                    "a mutex-critical module"
                } else {
                    "the hot-path cone"
                };
                diags.push(Diagnostic {
                    path: ctx.path.to_string(),
                    line,
                    rule: RULE_PANIC,
                    message: format!("`.{callee}()` on {place}"),
                    hint: "propagate via Result/Option (a mid-pass panic poisons the scheduler \
                           lock); if a panic is genuinely right, justify with an allow-marker"
                        .to_string(),
                });
            }
        }
    }
    diags
}

/// The token stream contains `#![forbid(unsafe_code)]` (possibly among
/// other inner attributes).
fn has_forbid_unsafe(ctx: &FileCtx<'_>, code: &[usize]) -> bool {
    code.iter().enumerate().any(|(k, &i)| {
        let get = |o: usize| code.get(k + o).map(|&j| &ctx.tokens[j]);
        ctx.tokens[i].is_punct("#")
            && get(1).is_some_and(|t| t.is_punct("!"))
            && get(2).is_some_and(|t| t.is_punct("["))
            && get(3).is_some_and(|t| t.is_ident("forbid"))
            && get(4).is_some_and(|t| t.is_punct("("))
            && get(5).is_some_and(|t| t.is_ident("unsafe_code"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint_source;

    #[test]
    fn crate_root_without_forbid_fires() {
        let diags = lint_source("crates/newcrate/src/lib.rs", "pub fn f() {}\n");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RULE_UNSAFE);
        assert_eq!(diags[0].line, 1);
    }

    #[test]
    fn crate_root_with_forbid_passes_and_non_roots_are_exempt() {
        let ok = "#![forbid(unsafe_code)]\npub fn f() {}\n";
        assert!(lint_source("crates/newcrate/src/lib.rs", ok).is_empty());
        assert!(lint_source("src/bin/fpga_route.rs", ok).is_empty());
        assert!(lint_source("crates/newcrate/src/util.rs", "pub fn f() {}\n").is_empty());
    }

    #[test]
    fn unsafe_keyword_fires_anywhere() {
        let src = "#![forbid(unsafe_code)]\nfn f() { unsafe { std::hint::unreachable_unchecked() } }\n";
        let diags = lint_source("crates/newcrate/src/lib.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RULE_UNSAFE);
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn hot_path_unwrap_and_expect_fire() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\nfn g(x: Option<u32>) -> u32 { x.expect(\"msg\") }\n";
        let diags = lint_source("crates/fpga/src/router.rs", src);
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.rule == RULE_PANIC));
        assert_eq!((diags[0].line, diags[1].line), (1, 2));
    }

    #[test]
    fn unwrap_is_fine_off_the_hot_path_and_in_tests() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert!(lint_source("crates/fpga/src/width.rs", src).is_empty());
        let test_src = "#[cfg(test)]\nmod tests {\n fn t() { Some(1).unwrap(); }\n}\n";
        assert!(lint_source("crates/fpga/src/sched.rs", test_src).is_empty());
    }

    #[test]
    fn unwrap_or_variants_do_not_fire() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) + x.unwrap_or_default() }\n";
        assert!(lint_source("crates/graph/src/dijkstra.rs", src).is_empty());
    }
}
