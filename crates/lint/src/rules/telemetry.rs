//! Rule `telemetry-sync`: the telemetry surface stays documented.
//!
//! Three cross-file checks, all workspace-level (they read Rust *and*
//! markdown, so they run once per lint invocation rather than per file):
//!
//! 1. **Counter glossary** — every `trace::Counter` variant's emitted
//!    name (the string in its `name()` match arm) appears in the
//!    README's counter-glossary table, and every glossary row names a
//!    real counter. The glossary is the region between the
//!    `<!-- lint:counter-glossary:start -->` / `:end` markers; each
//!    table row's first backticked word is the counter name.
//! 2. **Metric glossary** — every `trace::Metric` / `trace::Gauge`
//!    emitted name and every JSONL record type in `check.rs`'s
//!    `RECORD_TYPES` appears in the README's metric-glossary table
//!    (between the `<!-- lint:metric-glossary:start -->` / `:end`
//!    markers), and every row names a real metric, gauge, or record
//!    type.
//! 3. **CLI flags** — every flag tuple `("name", takes_value)` parsed
//!    in `src/bin/fpga_route.rs` has `--name` mentioned somewhere in
//!    the README.
//!
//! Telemetry consumers (trace-check, the experiment drivers, humans
//! reading JSONL) key on these names; an undocumented counter, metric,
//! record type, or flag is an interface change that silently skipped
//! review.

use std::collections::BTreeMap;
use std::path::Path;

use crate::lexer::{self, TokenKind};
use crate::{cfg_test_mask, Diagnostic};

/// Rule name, as used in `allow(...)` markers (Rust-side anchors only;
/// README findings have no marker syntax and must be fixed).
pub const RULE: &str = "telemetry-sync";

const COUNTER_RS: &str = "crates/trace/src/counter.rs";
const METRICS_RS: &str = "crates/trace/src/metrics.rs";
const CHECK_RS: &str = "crates/trace/src/check.rs";
const CLI_RS: &str = "src/bin/fpga_route.rs";
const README: &str = "README.md";

/// Opening marker of the README counter glossary.
pub const GLOSSARY_START: &str = "<!-- lint:counter-glossary:start -->";
/// Closing marker of the README counter glossary.
pub const GLOSSARY_END: &str = "<!-- lint:counter-glossary:end -->";
/// Opening marker of the README metric glossary (histogram metrics,
/// gauges, and JSONL record types).
pub const METRIC_GLOSSARY_START: &str = "<!-- lint:metric-glossary:start -->";
/// Closing marker of the README metric glossary.
pub const METRIC_GLOSSARY_END: &str = "<!-- lint:metric-glossary:end -->";

pub fn check_workspace(root: &Path) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let counters = std::fs::read_to_string(root.join(COUNTER_RS))
        .map(|src| extract_counters(&src))
        .unwrap_or_default();
    // The metric surface: histogram/gauge names from metrics.rs plus the
    // JSONL record types trace-check accepts — one namespace, one
    // glossary (the names are disjoint by construction).
    let mut metrics = std::fs::read_to_string(root.join(METRICS_RS))
        .map(|src| extract_metrics(&src))
        .unwrap_or_default();
    if let Ok(src) = std::fs::read_to_string(root.join(CHECK_RS)) {
        for (name, line) in extract_record_types(&src) {
            metrics.entry(name).or_insert(line);
        }
    }
    let flags = std::fs::read_to_string(root.join(CLI_RS))
        .map(|src| extract_flags(&src))
        .unwrap_or_default();
    if counters.is_empty() && metrics.is_empty() && flags.is_empty() {
        return diags;
    }
    let Ok(readme) = std::fs::read_to_string(root.join(README)) else {
        diags.push(Diagnostic {
            path: README.to_string(),
            line: 1,
            rule: RULE,
            message: "README.md is missing but counters/metrics/CLI flags exist".to_string(),
            hint: "document the telemetry surface in README.md".to_string(),
        });
        return diags;
    };

    // --- counter glossary, both directions -------------------------------
    if !counters.is_empty() {
        glossary_drift(
            &mut diags,
            &counters,
            extract_glossary(&readme, GLOSSARY_START, GLOSSARY_END),
            GlossaryKind {
                source_path: COUNTER_RS,
                what: "counter",
                names: "Counter variant",
                start: GLOSSARY_START,
                end: GLOSSARY_END,
            },
        );
    }

    // --- metric glossary, both directions --------------------------------
    if !metrics.is_empty() {
        glossary_drift(
            &mut diags,
            &metrics,
            extract_glossary(&readme, METRIC_GLOSSARY_START, METRIC_GLOSSARY_END),
            GlossaryKind {
                source_path: METRICS_RS,
                what: "metric",
                names: "Metric/Gauge variant or record type",
                start: METRIC_GLOSSARY_START,
                end: METRIC_GLOSSARY_END,
            },
        );
    }

    // --- CLI flags: parsed ⇒ documented ----------------------------------
    for (name, &line) in &flags {
        if !readme.contains(&format!("--{name}")) {
            diags.push(Diagnostic {
                path: CLI_RS.to_string(),
                line,
                rule: RULE,
                message: format!("CLI flag `--{name}` is parsed but not documented in README"),
                hint: format!("mention `--{name}` in the README CLI documentation"),
            });
        }
    }
    diags
}

/// Where one glossary's names come from and how its diagnostics read.
struct GlossaryKind {
    source_path: &'static str,
    what: &'static str,
    names: &'static str,
    start: &'static str,
    end: &'static str,
}

/// Both-direction drift between emitted names and a README glossary:
/// missing glossary, undocumented name, and stale row each diagnose.
fn glossary_drift(
    diags: &mut Vec<Diagnostic>,
    emitted: &BTreeMap<String, usize>,
    glossary: Option<BTreeMap<String, usize>>,
    kind: GlossaryKind,
) {
    match glossary {
        None => diags.push(Diagnostic {
            path: README.to_string(),
            line: 1,
            rule: RULE,
            message: format!(
                "README has no {} glossary ({} … {})",
                kind.what, kind.start, kind.end
            ),
            hint: format!(
                "add a glossary table between the markers with one `name` row per {}",
                kind.what
            ),
        }),
        Some(glossary) => {
            for (name, &line) in emitted {
                if !glossary.contains_key(name) {
                    diags.push(Diagnostic {
                        path: kind.source_path.to_string(),
                        line,
                        rule: RULE,
                        message: format!("{} `{name}` is not in the README glossary", kind.what),
                        hint: format!(
                            "add a table row for `{name}` to the README {} glossary",
                            kind.what
                        ),
                    });
                }
            }
            for (name, &line) in &glossary {
                if !emitted.contains_key(name) {
                    diags.push(Diagnostic {
                        path: README.to_string(),
                        line,
                        rule: RULE,
                        message: format!("glossary row `{name}` names no {}", kind.names),
                        hint: format!(
                            "remove the stale row or rename it to a real {} name",
                            kind.what
                        ),
                    });
                }
            }
        }
    }
}

/// `Counter::Variant => "name"` match arms → `name → line` (of the
/// string literal), skipping `#[cfg(test)]` regions.
fn extract_counters(source: &str) -> BTreeMap<String, usize> {
    let tokens = lexer::lex(source);
    let in_test = cfg_test_mask(&tokens);
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| tokens[i].kind != TokenKind::LineComment && !in_test[i])
        .collect();
    let mut out = BTreeMap::new();
    for (k, &i) in code.iter().enumerate() {
        let get = |o: usize| code.get(k + o).map(|&j| &tokens[j]);
        if tokens[i].is_ident("Counter")
            && get(1).is_some_and(|t| t.is_punct("::"))
            && get(2).is_some_and(|t| t.kind == TokenKind::Ident)
            && get(3).is_some_and(|t| t.is_punct("=>"))
            && get(4).is_some_and(|t| t.kind == TokenKind::Literal)
        {
            let lit = get(4).expect("checked above");
            out.entry(lit.text.clone()).or_insert(lit.line);
        }
    }
    out
}

/// `Metric::Variant => "name"` and `Gauge::Variant => "name"` match arms
/// → `name → line`, skipping `#[cfg(test)]` regions. Same token shape as
/// counters; histograms and gauges share the metric glossary.
fn extract_metrics(source: &str) -> BTreeMap<String, usize> {
    let tokens = lexer::lex(source);
    let in_test = cfg_test_mask(&tokens);
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| tokens[i].kind != TokenKind::LineComment && !in_test[i])
        .collect();
    let mut out = BTreeMap::new();
    for (k, &i) in code.iter().enumerate() {
        let get = |o: usize| code.get(k + o).map(|&j| &tokens[j]);
        if (tokens[i].is_ident("Metric") || tokens[i].is_ident("Gauge"))
            && get(1).is_some_and(|t| t.is_punct("::"))
            && get(2).is_some_and(|t| t.kind == TokenKind::Ident)
            && get(3).is_some_and(|t| t.is_punct("=>"))
            && get(4).is_some_and(|t| t.kind == TokenKind::Literal)
        {
            let lit = get(4).expect("checked above");
            out.entry(lit.text.clone()).or_insert(lit.line);
        }
    }
    out
}

/// The string literals of the `RECORD_TYPES` array initializer → `name →
/// line`: everything between the `=`-side `[` and its closing `]`.
fn extract_record_types(source: &str) -> BTreeMap<String, usize> {
    let tokens = lexer::lex(source);
    let in_test = cfg_test_mask(&tokens);
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| tokens[i].kind != TokenKind::LineComment && !in_test[i])
        .collect();
    let mut out = BTreeMap::new();
    // `pub const RECORD_TYPES: [&str; N] = ["a", ...];` — the type
    // annotation contains a bracket and a numeric literal of its own, so
    // collection starts only after the `=`.
    let mut seen_name = false;
    let mut collecting = false;
    for &i in &code {
        let tok = &tokens[i];
        if tok.is_ident("RECORD_TYPES") {
            seen_name = true;
            continue;
        }
        if seen_name && !collecting {
            if tok.is_punct("=") {
                collecting = true;
            }
            continue;
        }
        if !collecting {
            continue;
        }
        if tok.is_punct("]") {
            break;
        }
        if tok.kind == TokenKind::Literal && tok.text.chars().any(|c| c.is_ascii_alphabetic()) {
            out.entry(tok.text.clone()).or_insert(tok.line);
        }
    }
    out
}

/// Flag-spec tuples `("name", true|false)` → `name → line`, skipping
/// `#[cfg(test)]` regions (test helpers build ad-hoc flag maps).
fn extract_flags(source: &str) -> BTreeMap<String, usize> {
    let tokens = lexer::lex(source);
    let in_test = cfg_test_mask(&tokens);
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| tokens[i].kind != TokenKind::LineComment && !in_test[i])
        .collect();
    let mut out = BTreeMap::new();
    for (k, &i) in code.iter().enumerate() {
        let get = |o: usize| code.get(k + o).map(|&j| &tokens[j]);
        if tokens[i].is_punct("(")
            && get(1).is_some_and(|t| t.kind == TokenKind::Literal && !t.text.is_empty())
            && get(2).is_some_and(|t| t.is_punct(","))
            && get(3).is_some_and(|t| t.is_ident("true") || t.is_ident("false"))
            && get(4).is_some_and(|t| t.is_punct(")"))
        {
            let lit = get(1).expect("checked above");
            out.entry(lit.text.clone()).or_insert(lit.line);
        }
    }
    out
}

/// The glossary rows between the given markers: `name → line`. `None`
/// when the markers are absent.
fn extract_glossary(readme: &str, start: &str, end: &str) -> Option<BTreeMap<String, usize>> {
    let mut out = BTreeMap::new();
    let mut inside = false;
    let mut seen_markers = false;
    for (idx, line) in readme.lines().enumerate() {
        let lineno = idx + 1;
        if line.contains(start) {
            inside = true;
            seen_markers = true;
            continue;
        }
        if line.contains(end) {
            inside = false;
            continue;
        }
        if !inside || !line.trim_start().starts_with('|') {
            continue;
        }
        // First backticked word of the table row is the counter name.
        let mut parts = line.split('`');
        if let (Some(_), Some(name)) = (parts.next(), parts.next()) {
            let name = name.trim();
            if !name.is_empty() {
                out.entry(name.to_string()).or_insert(lineno);
            }
        }
    }
    seen_markers.then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_extract_from_name_match_arms() {
        let src = "impl Counter {\n fn name(self) -> &'static str {\n match self {\n\
                   Counter::DijkstraRuns => \"dijkstra_runs\",\n\
                   Counter::PfaFolds => \"pfa_folds\",\n } } }\n";
        let got = extract_counters(src);
        assert_eq!(got.len(), 2);
        assert_eq!(got.get("dijkstra_runs"), Some(&4));
        assert_eq!(got.get("pfa_folds"), Some(&5));
    }

    #[test]
    fn flags_extract_from_spec_tuples_only() {
        let src = "const ROUTE_FLAGS: FlagSpec = &[(\"circuit\", true), (\"stream\", false)];\n\
                   fn f() { let pair = (\"3000\", profiles()); let _ = pair; }\n";
        let got = extract_flags(src);
        assert_eq!(
            got.keys().collect::<Vec<_>>(),
            vec!["circuit", "stream"]
        );
    }

    #[test]
    fn glossary_rows_parse_between_markers() {
        let readme = "intro `not_a_counter`\n<!-- lint:counter-glossary:start -->\n\
                      | counter | meaning |\n|---|---|\n| `dijkstra_runs` | runs |\n\
                      <!-- lint:counter-glossary:end -->\n| `outside` | x |\n";
        let got = extract_glossary(readme, GLOSSARY_START, GLOSSARY_END).expect("markers present");
        assert_eq!(got.keys().collect::<Vec<_>>(), vec!["dijkstra_runs"]);
        assert_eq!(
            extract_glossary("no markers here", GLOSSARY_START, GLOSSARY_END),
            None
        );
    }

    #[test]
    fn metrics_extract_from_metric_and_gauge_arms() {
        let src = "match self {\n\
                   Metric::NetRouteNs => \"net_route_ns\",\n\
                   Gauge::SchedWorkers => \"sched_workers\",\n }\n";
        let got = extract_metrics(src);
        assert_eq!(
            got.keys().collect::<Vec<_>>(),
            vec!["net_route_ns", "sched_workers"]
        );
    }

    #[test]
    fn record_types_extract_from_the_array_literal() {
        let src = "pub const RECORD_TYPES: [&str; 3] = [\"meta\", \"span\",\n \"gauge\"];\n\
                   const OTHER: [&str; 1] = [\"nope\"];\n";
        let got = extract_record_types(src);
        assert_eq!(got.keys().collect::<Vec<_>>(), vec!["gauge", "meta", "span"]);
        assert_eq!(got.get("gauge"), Some(&2));
    }

    #[test]
    fn workspace_check_reports_every_drift_kind() {
        let dir = std::env::temp_dir().join("fpga_lint_telemetry_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("crates/trace/src")).unwrap();
        std::fs::create_dir_all(dir.join("src/bin")).unwrap();
        std::fs::write(
            dir.join(COUNTER_RS),
            "fn name(self) -> &'static str { match self {\n\
             Counter::DijkstraRuns => \"dijkstra_runs\",\n\
             Counter::PfaFolds => \"pfa_folds\",\n } }\n",
        )
        .unwrap();
        std::fs::write(
            dir.join(METRICS_RS),
            "fn name(self) -> &'static str { match self {\n\
             Metric::NetRouteNs => \"net_route_ns\",\n\
             Gauge::SchedWorkers => \"sched_workers\",\n } }\n",
        )
        .unwrap();
        std::fs::write(
            dir.join(CHECK_RS),
            "pub const RECORD_TYPES: [&str; 2] = [\"meta\", \"convergence\"];\n",
        )
        .unwrap();
        std::fs::write(
            dir.join(CLI_RS),
            "const F: FlagSpec = &[(\"circuit\", true), (\"ghost\", false)];\n",
        )
        .unwrap();
        // Drift, one of each kind: undocumented counter (`pfa_folds`),
        // stale counter row, undocumented gauge (`sched_workers`),
        // undocumented record type (`convergence`), stale metric row,
        // undocumented CLI flag (`--ghost`).
        std::fs::write(
            dir.join(README),
            "use `--circuit` to pick one\n<!-- lint:counter-glossary:start -->\n\
             | `dijkstra_runs` | runs |\n| `stale_counter` | gone |\n\
             <!-- lint:counter-glossary:end -->\n\
             <!-- lint:metric-glossary:start -->\n\
             | `net_route_ns` | per-net time |\n| `meta` | header |\n\
             | `ghost_metric` | gone |\n\
             <!-- lint:metric-glossary:end -->\n",
        )
        .unwrap();
        let diags = check_workspace(&dir);
        let msgs: Vec<&str> = diags.iter().map(|d| d.message.as_str()).collect();
        assert_eq!(diags.len(), 6, "{msgs:?}");
        assert!(diags.iter().any(|d| d.message.contains("`pfa_folds`") && d.path == COUNTER_RS));
        assert!(diags.iter().any(|d| d.message.contains("`stale_counter`") && d.path == README));
        assert!(diags.iter().any(|d| d.message.contains("`sched_workers`") && d.path == METRICS_RS));
        assert!(diags.iter().any(|d| d.message.contains("`convergence`") && d.path == METRICS_RS));
        assert!(diags.iter().any(|d| d.message.contains("`ghost_metric`") && d.path == README));
        assert!(diags.iter().any(|d| d.message.contains("`--ghost`") && d.path == CLI_RS));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metric_glossary_is_not_required_when_no_metrics_exist() {
        let dir = std::env::temp_dir().join("fpga_lint_telemetry_nometrics_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("crates/trace/src")).unwrap();
        std::fs::write(
            dir.join(COUNTER_RS),
            "match self { Counter::DijkstraRuns => \"dijkstra_runs\", }\n",
        )
        .unwrap();
        std::fs::write(
            dir.join(README),
            "<!-- lint:counter-glossary:start -->\n| `dijkstra_runs` | runs |\n\
             <!-- lint:counter-glossary:end -->\n",
        )
        .unwrap();
        assert!(check_workspace(&dir).is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
