//! Rule `telemetry-sync`: the telemetry surface stays documented.
//!
//! Two cross-file checks, both workspace-level (they read Rust *and*
//! markdown, so they run once per lint invocation rather than per file):
//!
//! 1. **Counter glossary** — every `trace::Counter` variant's emitted
//!    name (the string in its `name()` match arm) appears in the
//!    README's counter-glossary table, and every glossary row names a
//!    real counter. The glossary is the region between the
//!    `<!-- lint:counter-glossary:start -->` / `:end` markers; each
//!    table row's first backticked word is the counter name.
//! 2. **CLI flags** — every flag tuple `("name", takes_value)` parsed
//!    in `src/bin/fpga_route.rs` has `--name` mentioned somewhere in
//!    the README.
//!
//! Telemetry consumers (trace-check, the experiment drivers, humans
//! reading JSONL) key on these names; an undocumented counter or flag
//! is an interface change that silently skipped review.

use std::collections::BTreeMap;
use std::path::Path;

use crate::lexer::{self, TokenKind};
use crate::{cfg_test_mask, Diagnostic};

/// Rule name, as used in `allow(...)` markers (Rust-side anchors only;
/// README findings have no marker syntax and must be fixed).
pub const RULE: &str = "telemetry-sync";

const COUNTER_RS: &str = "crates/trace/src/counter.rs";
const CLI_RS: &str = "src/bin/fpga_route.rs";
const README: &str = "README.md";

/// Opening marker of the README counter glossary.
pub const GLOSSARY_START: &str = "<!-- lint:counter-glossary:start -->";
/// Closing marker of the README counter glossary.
pub const GLOSSARY_END: &str = "<!-- lint:counter-glossary:end -->";

pub fn check_workspace(root: &Path) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let counters = std::fs::read_to_string(root.join(COUNTER_RS))
        .map(|src| extract_counters(&src))
        .unwrap_or_default();
    let flags = std::fs::read_to_string(root.join(CLI_RS))
        .map(|src| extract_flags(&src))
        .unwrap_or_default();
    if counters.is_empty() && flags.is_empty() {
        return diags;
    }
    let Ok(readme) = std::fs::read_to_string(root.join(README)) else {
        diags.push(Diagnostic {
            path: README.to_string(),
            line: 1,
            rule: RULE,
            message: "README.md is missing but counters/CLI flags exist".to_string(),
            hint: "document the telemetry surface in README.md".to_string(),
        });
        return diags;
    };

    // --- counter glossary, both directions -------------------------------
    if !counters.is_empty() {
        match extract_glossary(&readme) {
            None => diags.push(Diagnostic {
                path: README.to_string(),
                line: 1,
                rule: RULE,
                message: format!("README has no counter glossary ({GLOSSARY_START} … {GLOSSARY_END})"),
                hint: "add a glossary table between the markers with one `name` row per counter"
                    .to_string(),
            }),
            Some(glossary) => {
                for (name, &line) in &counters {
                    if !glossary.contains_key(name) {
                        diags.push(Diagnostic {
                            path: COUNTER_RS.to_string(),
                            line,
                            rule: RULE,
                            message: format!("counter `{name}` is not in the README glossary"),
                            hint: format!(
                                "add a table row for `{name}` to the README counter glossary"
                            ),
                        });
                    }
                }
                for (name, &line) in &glossary {
                    if !counters.contains_key(name) {
                        diags.push(Diagnostic {
                            path: README.to_string(),
                            line,
                            rule: RULE,
                            message: format!("glossary row `{name}` names no Counter variant"),
                            hint: "remove the stale row or rename it to a real counter name"
                                .to_string(),
                        });
                    }
                }
            }
        }
    }

    // --- CLI flags: parsed ⇒ documented ----------------------------------
    for (name, &line) in &flags {
        if !readme.contains(&format!("--{name}")) {
            diags.push(Diagnostic {
                path: CLI_RS.to_string(),
                line,
                rule: RULE,
                message: format!("CLI flag `--{name}` is parsed but not documented in README"),
                hint: format!("mention `--{name}` in the README CLI documentation"),
            });
        }
    }
    diags
}

/// `Counter::Variant => "name"` match arms → `name → line` (of the
/// string literal), skipping `#[cfg(test)]` regions.
fn extract_counters(source: &str) -> BTreeMap<String, usize> {
    let tokens = lexer::lex(source);
    let in_test = cfg_test_mask(&tokens);
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| tokens[i].kind != TokenKind::LineComment && !in_test[i])
        .collect();
    let mut out = BTreeMap::new();
    for (k, &i) in code.iter().enumerate() {
        let get = |o: usize| code.get(k + o).map(|&j| &tokens[j]);
        if tokens[i].is_ident("Counter")
            && get(1).is_some_and(|t| t.is_punct("::"))
            && get(2).is_some_and(|t| t.kind == TokenKind::Ident)
            && get(3).is_some_and(|t| t.is_punct("=>"))
            && get(4).is_some_and(|t| t.kind == TokenKind::Literal)
        {
            let lit = get(4).expect("checked above");
            out.entry(lit.text.clone()).or_insert(lit.line);
        }
    }
    out
}

/// Flag-spec tuples `("name", true|false)` → `name → line`, skipping
/// `#[cfg(test)]` regions (test helpers build ad-hoc flag maps).
fn extract_flags(source: &str) -> BTreeMap<String, usize> {
    let tokens = lexer::lex(source);
    let in_test = cfg_test_mask(&tokens);
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| tokens[i].kind != TokenKind::LineComment && !in_test[i])
        .collect();
    let mut out = BTreeMap::new();
    for (k, &i) in code.iter().enumerate() {
        let get = |o: usize| code.get(k + o).map(|&j| &tokens[j]);
        if tokens[i].is_punct("(")
            && get(1).is_some_and(|t| t.kind == TokenKind::Literal && !t.text.is_empty())
            && get(2).is_some_and(|t| t.is_punct(","))
            && get(3).is_some_and(|t| t.is_ident("true") || t.is_ident("false"))
            && get(4).is_some_and(|t| t.is_punct(")"))
        {
            let lit = get(1).expect("checked above");
            out.entry(lit.text.clone()).or_insert(lit.line);
        }
    }
    out
}

/// The glossary rows between the markers: `name → line`. `None` when the
/// markers are absent.
fn extract_glossary(readme: &str) -> Option<BTreeMap<String, usize>> {
    let mut out = BTreeMap::new();
    let mut inside = false;
    let mut seen_markers = false;
    for (idx, line) in readme.lines().enumerate() {
        let lineno = idx + 1;
        if line.contains(GLOSSARY_START) {
            inside = true;
            seen_markers = true;
            continue;
        }
        if line.contains(GLOSSARY_END) {
            inside = false;
            continue;
        }
        if !inside || !line.trim_start().starts_with('|') {
            continue;
        }
        // First backticked word of the table row is the counter name.
        let mut parts = line.split('`');
        if let (Some(_), Some(name)) = (parts.next(), parts.next()) {
            let name = name.trim();
            if !name.is_empty() {
                out.entry(name.to_string()).or_insert(lineno);
            }
        }
    }
    seen_markers.then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_extract_from_name_match_arms() {
        let src = "impl Counter {\n fn name(self) -> &'static str {\n match self {\n\
                   Counter::DijkstraRuns => \"dijkstra_runs\",\n\
                   Counter::PfaFolds => \"pfa_folds\",\n } } }\n";
        let got = extract_counters(src);
        assert_eq!(got.len(), 2);
        assert_eq!(got.get("dijkstra_runs"), Some(&4));
        assert_eq!(got.get("pfa_folds"), Some(&5));
    }

    #[test]
    fn flags_extract_from_spec_tuples_only() {
        let src = "const ROUTE_FLAGS: FlagSpec = &[(\"circuit\", true), (\"stream\", false)];\n\
                   fn f() { let pair = (\"3000\", profiles()); let _ = pair; }\n";
        let got = extract_flags(src);
        assert_eq!(
            got.keys().collect::<Vec<_>>(),
            vec!["circuit", "stream"]
        );
    }

    #[test]
    fn glossary_rows_parse_between_markers() {
        let readme = "intro `not_a_counter`\n<!-- lint:counter-glossary:start -->\n\
                      | counter | meaning |\n|---|---|\n| `dijkstra_runs` | runs |\n\
                      <!-- lint:counter-glossary:end -->\n| `outside` | x |\n";
        let got = extract_glossary(readme).expect("markers present");
        assert_eq!(got.keys().collect::<Vec<_>>(), vec!["dijkstra_runs"]);
        assert_eq!(extract_glossary("no markers here"), None);
    }

    #[test]
    fn workspace_check_reports_all_four_drift_kinds() {
        let dir = std::env::temp_dir().join("fpga_lint_telemetry_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("crates/trace/src")).unwrap();
        std::fs::create_dir_all(dir.join("src/bin")).unwrap();
        std::fs::write(
            dir.join(COUNTER_RS),
            "fn name(self) -> &'static str { match self {\n\
             Counter::DijkstraRuns => \"dijkstra_runs\",\n\
             Counter::PfaFolds => \"pfa_folds\",\n } }\n",
        )
        .unwrap();
        std::fs::write(
            dir.join(CLI_RS),
            "const F: FlagSpec = &[(\"circuit\", true), (\"ghost\", false)];\n",
        )
        .unwrap();
        std::fs::write(
            dir.join(README),
            "use `--circuit` to pick one\n<!-- lint:counter-glossary:start -->\n\
             | `dijkstra_runs` | runs |\n| `stale_counter` | gone |\n\
             <!-- lint:counter-glossary:end -->\n",
        )
        .unwrap();
        let diags = check_workspace(&dir);
        let rules: Vec<&str> = diags.iter().map(|d| d.message.as_str()).collect();
        assert_eq!(diags.len(), 3, "{rules:?}");
        assert!(diags.iter().any(|d| d.message.contains("`pfa_folds`") && d.path == COUNTER_RS));
        assert!(diags.iter().any(|d| d.message.contains("`stale_counter`") && d.path == README));
        assert!(diags.iter().any(|d| d.message.contains("`--ghost`") && d.path == CLI_RS));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
