//! The individual lint rules. Each module exposes its rule name
//! (`RULE`) and a `check` entry point; see the crate docs for the
//! discipline each rule protects and [`crate::RULES`] for the registry.

pub mod commit_path;
pub mod determinism;
pub mod hygiene;
pub mod readset;
pub mod telemetry;
pub mod weights;
