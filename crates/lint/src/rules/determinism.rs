//! The `determinism-*` rule family: mechanical bans on nondeterminism
//! sources inside the hot-path cone.
//!
//! Every parallel mode this workspace ships promises bit-identical
//! results across thread counts and schedulers. That promise dies
//! quietly: a `HashMap` iteration whose order leaks into net ordering,
//! a wall-clock read folded into a cost, a worker-index branch, a float
//! accumulator whose rounding depends on commit order. Each is legal
//! Rust, invisible to the compiler, and only detectable end-to-end when
//! a circuit happens to expose it. These rules ban the *source shapes*
//! inside the cone ([`crate::callgraph`]) instead:
//!
//! * [`RULE_HASH`] — iteration over `HashMap`/`HashSet` (`.iter()`,
//!   `.keys()`, `for … in map`, …). Escapes: an order-insensitive
//!   reduction (`count`/`sum`/`min`/`max`/`all`/`any`/`is_empty`) or a
//!   sort/`BTree` re-collection within the statement window, or a
//!   justified waiver.
//! * [`RULE_CLOCK`] — `Instant::now`/`SystemTime` anywhere
//!   result-affecting. The telemetry modules (`crates/trace`,
//!   `telemetry.rs`) are excluded wholesale; hot modules that *time*
//!   phases for telemetry carry per-site waivers arguing the reading
//!   never feeds routing state.
//! * [`RULE_THREAD`] — `thread::current()`, `ThreadId`, or branching on
//!   a worker index outside the scheduler assignment layer
//!   (`sched.rs`/`parallel.rs`/`par.rs`), where worker identity is
//!   load-balancing-only by the single-writer argument.
//! * [`RULE_FLOAT`] — float accumulation (`+=`, `*=`, binary `+`/`*` on
//!   float-typed locals) in cone code that also touches `Weight`: float
//!   rounding is evaluation-order-dependent, so anything feeding edge
//!   costs must stay in integer milli-units.
//!
//! [`RULE_CONE`] diagnostics are emitted by the driver when a pinned
//! entry point disappears — see `callgraph::ENTRY_POINTS`.

use std::collections::BTreeSet;

use crate::lexer::TokenKind;
use crate::{Diagnostic, FileCtx};

/// Unordered-container iteration in the cone.
pub const RULE_HASH: &str = "determinism-hash-iter";
/// Wall-clock reads in result-affecting cone code.
pub const RULE_CLOCK: &str = "determinism-wall-clock";
/// Thread identity / worker-index branching outside the scheduler.
pub const RULE_THREAD: &str = "determinism-thread-id";
/// Float accumulation feeding Weight.
pub const RULE_FLOAT: &str = "determinism-float-weight";
/// A pinned cone entry point stopped resolving (driver-emitted).
pub const RULE_CONE: &str = "determinism-cone";

/// Modules whose entire job is telemetry: spans, counters, metrics,
/// sinks. Wall-clock readings there are the product, not a hazard —
/// merge rules keep instrumented runs bit-identical (DESIGN.md §5f) —
/// and their floats render reports, never edge costs.
fn telemetry_module(path: &str) -> bool {
    path.starts_with("crates/trace/") || path.ends_with("/telemetry.rs")
}

/// The scheduler assignment layer: the only place worker identity may
/// influence control flow (work distribution is identity-dependent by
/// nature; results stay identity-free via the single-writer commit).
fn scheduler_layer(path: &str) -> bool {
    path == "crates/fpga/src/sched.rs"
        || path == "crates/fpga/src/parallel.rs"
        || path == "crates/graph/src/par.rs"
}

/// Iteration adapters whose results depend on hash order.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
];

/// Order-insensitive escapes: a reduction that makes hash order
/// unobservable, or a sort / ordered re-collection downstream.
const ORDER_SAFE: &[&str] = &[
    "count", "sum", "min", "max", "all", "any", "is_empty", "len", "contains", "fold_commutative",
    "BTreeMap", "BTreeSet",
];

/// Identifier names treated as worker indices when branched on.
const WORKER_IDENTS: &[&str] = &["worker_index", "worker_id", "wid"];

const COMPARISONS: &[&str] = &["==", "!=", "<", "<=", ">", ">="];

pub fn check(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    if ctx.path.starts_with("crates/lint/") {
        return Vec::new();
    }
    let code: Vec<usize> = ctx.code_indices().collect();
    let mut diags = Vec::new();
    check_hash_iteration(ctx, &code, &mut diags);
    if !telemetry_module(ctx.path) {
        check_wall_clock(ctx, &code, &mut diags);
        check_float_accumulation(ctx, &code, &mut diags);
    }
    if !scheduler_layer(ctx.path) {
        check_thread_identity(ctx, &code, &mut diags);
    }
    diags
}

/// Token `code[k]` is in determinism scope and not test code.
fn in_scope(ctx: &FileCtx<'_>, code: &[usize], k: usize) -> bool {
    let i = code[k];
    !ctx.in_test[i] && ctx.determinism_scope(i)
}

// --- hash iteration -------------------------------------------------------

fn check_hash_iteration(ctx: &FileCtx<'_>, code: &[usize], diags: &mut Vec<Diagnostic>) {
    // Taint pass: locals/params annotated or constructed as hash
    // containers. `&`/`mut` between the `:` and the type are skipped so
    // `m: &mut HashMap<…>` params taint too.
    let mut tainted: BTreeSet<&str> = BTreeSet::new();
    for (k, &i) in code.iter().enumerate() {
        let tok = &ctx.tokens[i];
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let next = |o: usize| code.get(k + o).map(|&j| &ctx.tokens[j]);
        if k.checked_sub(1).is_some_and(|p| ctx.tokens[code[p]].is_punct(".")) {
            continue; // a field of some other value
        }
        let is_hash = |t: &crate::lexer::Token| t.is_ident("HashMap") || t.is_ident("HashSet");
        let annotated = next(1).is_some_and(|t| t.is_punct(":")) && {
            let mut o = 2;
            while next(o).is_some_and(|t| t.is_punct("&") || t.is_ident("mut") || t.kind == TokenKind::Lifetime)
            {
                o += 1;
            }
            next(o).is_some_and(is_hash)
        };
        let constructed = next(1).is_some_and(|t| t.is_punct("="))
            && next(2).is_some_and(is_hash)
            && next(3).is_some_and(|t| t.is_punct("::"));
        if annotated || constructed {
            tainted.insert(tok.text.as_str());
        }
    }
    if tainted.is_empty() {
        return;
    }

    let fire = |diags: &mut Vec<Diagnostic>, line: usize, name: &str, how: &str| {
        diags.push(Diagnostic {
            path: ctx.path.to_string(),
            line,
            rule: RULE_HASH,
            message: format!(
                "hash-order iteration over `{name}` ({how}) in the hot-path cone"
            ),
            hint: "iterate a sorted projection (collect + sort, or a BTreeMap/BTreeSet) or \
                   reduce order-insensitively; waive only with an argument why order cannot \
                   reach routing results"
                .to_string(),
        });
    };

    for (k, &i) in code.iter().enumerate() {
        if !in_scope(ctx, code, k) {
            continue;
        }
        let tok = &ctx.tokens[i];
        let next = |o: usize| code.get(k + o).map(|&j| &ctx.tokens[j]);
        // `tainted.iter()` and friends; `for x in m.keys()` matches both
        // shapes, so the method form wins and the for-loop form is the
        // fallback (one diagnostic per site).
        if tok.kind == TokenKind::Ident && tainted.contains(tok.text.as_str()) {
            let method_call = next(1).is_some_and(|t| t.is_punct("."))
                && next(2).is_some_and(|t| {
                    t.kind == TokenKind::Ident && HASH_ITER_METHODS.contains(&t.text.as_str())
                })
                && next(3).is_some_and(|t| t.is_punct("("));
            if method_call {
                if !order_safe_window(ctx, code, k) {
                    let method = next(2).expect("checked above").text.clone();
                    fire(diags, tok.line, &tok.text, &format!(".{method}()"));
                }
                continue;
            }
            // `for x in tainted` / `for x in &mut tainted`.
            let mut p = k;
            let prev = |p: &mut usize| -> Option<&crate::lexer::Token> {
                *p = p.checked_sub(1)?;
                Some(&ctx.tokens[code[*p]])
            };
            let mut q = prev(&mut p);
            while q.is_some_and(|t| t.is_punct("&") || t.is_ident("mut")) {
                q = prev(&mut p);
            }
            if q.is_some_and(|t| t.is_ident("in")) && !order_safe_window(ctx, code, k) {
                fire(diags, tok.line, &tok.text, "for-loop");
            }
        }
    }
}

/// Scans ahead from `code[k]` to the end of the *next* statement (two
/// `;`-or-`{` boundaries, capped at 48 tokens) for an order-restoring
/// escape: a `sort*` call, an ordered re-collection, or an
/// order-insensitive reduction. The window deliberately spans one
/// statement past the iteration so the idiomatic
/// `let mut v: Vec<_> = m.keys().collect(); v.sort();` passes without a
/// waiver. Known false negative: a `sort` of an unrelated binding
/// inside the window also passes — DESIGN.md §5i accepts that shape.
fn order_safe_window(ctx: &FileCtx<'_>, code: &[usize], k: usize) -> bool {
    let mut boundaries = 0usize;
    for o in 1..48 {
        let Some(&j) = code.get(k + o) else { break };
        let t = &ctx.tokens[j];
        if t.kind == TokenKind::Ident {
            if t.text.starts_with("sort") || ORDER_SAFE.contains(&t.text.as_str()) {
                return true;
            }
        } else if t.is_punct(";") || t.is_punct("{") {
            boundaries += 1;
            if boundaries >= 2 {
                break;
            }
        }
    }
    false
}

// --- wall clock -----------------------------------------------------------

fn check_wall_clock(ctx: &FileCtx<'_>, code: &[usize], diags: &mut Vec<Diagnostic>) {
    for (k, &i) in code.iter().enumerate() {
        if !in_scope(ctx, code, k) {
            continue;
        }
        let tok = &ctx.tokens[i];
        let next = |o: usize| code.get(k + o).map(|&j| &ctx.tokens[j]);
        let offender = if tok.is_ident("Instant")
            && next(1).is_some_and(|t| t.is_punct("::"))
            && next(2).is_some_and(|t| t.is_ident("now"))
        {
            Some("`Instant::now()`")
        } else if tok.is_ident("SystemTime") {
            Some("`SystemTime`")
        } else {
            None
        };
        if let Some(what) = offender {
            diags.push(Diagnostic {
                path: ctx.path.to_string(),
                line: tok.line,
                rule: RULE_CLOCK,
                message: format!("{what} in hot-path-cone code"),
                hint: "wall-clock readings must not affect routing state; keep timing in the \
                       telemetry modules, or waive with an argument that the reading only \
                       feeds spans/metrics"
                    .to_string(),
            });
        }
    }
}

// --- thread identity ------------------------------------------------------

fn check_thread_identity(ctx: &FileCtx<'_>, code: &[usize], diags: &mut Vec<Diagnostic>) {
    for (k, &i) in code.iter().enumerate() {
        if !in_scope(ctx, code, k) {
            continue;
        }
        let tok = &ctx.tokens[i];
        let next = |o: usize| code.get(k + o).map(|&j| &ctx.tokens[j]);
        let prev = |o: usize| k.checked_sub(o).map(|p| &ctx.tokens[code[p]]);
        let offender = if tok.is_ident("thread")
            && next(1).is_some_and(|t| t.is_punct("::"))
            && next(2).is_some_and(|t| t.is_ident("current"))
        {
            Some("`thread::current()`".to_string())
        } else if tok.is_ident("ThreadId") {
            Some("`ThreadId`".to_string())
        } else if tok.kind == TokenKind::Ident
            && WORKER_IDENTS.contains(&tok.text.as_str())
            && (next(1).is_some_and(|t| COMPARISONS.contains(&t.text.as_str()))
                || prev(1).is_some_and(|t| COMPARISONS.contains(&t.text.as_str())))
        {
            Some(format!("worker-index branching on `{}`", tok.text))
        } else {
            None
        };
        if let Some(what) = offender {
            diags.push(Diagnostic {
                path: ctx.path.to_string(),
                line: tok.line,
                rule: RULE_THREAD,
                message: format!("{what} outside the scheduler assignment layer"),
                hint: "worker identity may steer load balancing only inside \
                       sched.rs/parallel.rs/par.rs; results must be identity-free — route \
                       the decision through deterministic state (net index, graph epoch)"
                    .to_string(),
            });
        }
    }
}

// --- float accumulation ---------------------------------------------------

fn check_float_accumulation(ctx: &FileCtx<'_>, code: &[usize], diags: &mut Vec<Diagnostic>) {
    // Only meaningful where Weight is in play: float math that never
    // meets Weight cannot perturb edge costs.
    if !code.iter().any(|&i| ctx.tokens[i].is_ident("Weight")) {
        return;
    }
    // Taint pass: floats by annotation or fractional-literal init.
    let mut tainted: BTreeSet<&str> = BTreeSet::new();
    for (k, &i) in code.iter().enumerate() {
        let tok = &ctx.tokens[i];
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let next = |o: usize| code.get(k + o).map(|&j| &ctx.tokens[j]);
        if k.checked_sub(1).is_some_and(|p| ctx.tokens[code[p]].is_punct(".")) {
            continue;
        }
        let annotated = next(1).is_some_and(|t| t.is_punct(":"))
            && next(2).is_some_and(|t| t.is_ident("f32") || t.is_ident("f64"));
        let float_lit = next(1).is_some_and(|t| t.is_punct("="))
            && next(2).is_some_and(|t| {
                t.kind == TokenKind::Literal
                    && t.text.contains('.')
                    && t.text.parse::<f64>().is_ok()
            });
        if annotated || float_lit {
            tainted.insert(tok.text.as_str());
        }
    }
    if tainted.is_empty() {
        return;
    }
    for (k, &i) in code.iter().enumerate() {
        if !in_scope(ctx, code, k) {
            continue;
        }
        let tok = &ctx.tokens[i];
        if tok.kind != TokenKind::Punct {
            continue;
        }
        let op = tok.text.as_str();
        if !matches!(op, "+=" | "-=" | "*=" | "+" | "*") {
            continue;
        }
        let prev = k.checked_sub(1).map(|p| &ctx.tokens[code[p]]);
        let next = code.get(k + 1).map(|&j| &ctx.tokens[j]);
        let left = prev
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .filter(|n| tainted.contains(n));
        let right = next
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .filter(|n| tainted.contains(n));
        // Binary ops need a value-ish left side (same discipline as the
        // weights rule); compound assignment needs the tainted name on
        // the left.
        let offender = if matches!(op, "+=" | "-=" | "*=") {
            left
        } else {
            let left_valueish = prev.is_some_and(|t| {
                matches!(t.kind, TokenKind::Ident | TokenKind::Literal)
                    || t.is_punct(")")
                    || t.is_punct("]")
            });
            if left_valueish { left.or(right) } else { None }
        };
        if let Some(name) = offender {
            diags.push(Diagnostic {
                path: ctx.path.to_string(),
                line: tok.line,
                rule: RULE_FLOAT,
                message: format!(
                    "float accumulation `{op}` on `{name}` in Weight-adjacent cone code"
                ),
                hint: "float rounding is evaluation-order-dependent; keep cost math in \
                       integer milli (Weight::from_milli) or waive with an argument why \
                       this value never reaches a Weight"
                    .to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint_source;

    const HOT: &str = "crates/fpga/src/newhot.rs";

    #[test]
    fn hash_iteration_fires_in_cone_scope_and_not_in_cold_paths() {
        let src = "fn f(m: &HashMap<u32, u32>) {\n for (k, v) in m { use_it(k, v); }\n}\n";
        let diags = lint_source(HOT, src);
        assert_eq!(diags.len(), 1, "{diags:#?}");
        assert_eq!(diags[0].rule, RULE_HASH);
        assert_eq!(diags[0].line, 2);
        // Binaries and experiment drivers are outside the presumed-hot
        // fallback scope (the bin path still owes unsafe-forbid, so
        // filter to this family).
        assert!(lint_source("src/bin/fpga_route.rs", src)
            .iter()
            .all(|d| !d.rule.starts_with("determinism-")));
        assert!(lint_source("crates/experiments/src/table2.rs", src).is_empty());
    }

    #[test]
    fn hash_method_iteration_fires_and_sorted_projection_escapes() {
        let bad = "fn f() {\n let m: HashMap<u32, u32> = build();\n for k in m.keys() { emit(k); }\n}\n";
        let diags = lint_source(HOT, bad);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RULE_HASH);
        let sorted = "fn f() {\n let m: HashMap<u32, u32> = build();\n\
                      let mut ks: Vec<u32> = m.keys().copied().collect();\n ks.sort_unstable();\n\
                      for k in ks { emit(k); }\n}\n";
        assert!(lint_source(HOT, sorted).is_empty(), "sort within the window escapes");
        let reduced = "fn f() {\n let m: HashMap<u32, u32> = build();\n let n = m.values().copied().max();\n use_it(n);\n}\n";
        assert!(lint_source(HOT, reduced).is_empty(), "order-insensitive reduction escapes");
    }

    #[test]
    fn wall_clock_fires_outside_telemetry_modules_only() {
        let src = "fn f() -> u64 { let t = Instant::now(); cost_from(t) }\n";
        let diags = lint_source(HOT, src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RULE_CLOCK);
        assert!(lint_source("crates/trace/src/collector.rs", src).is_empty());
        assert!(lint_source("crates/fpga/src/telemetry.rs", src).is_empty());
        let sys = "fn f() { let t: SystemTime = now(); use_it(t); }\n";
        assert_eq!(lint_source(HOT, sys)[0].rule, RULE_CLOCK);
    }

    #[test]
    fn thread_identity_fires_outside_the_scheduler_layer() {
        let src = "fn f() { let id = thread::current().id(); seed(id); }\n";
        let diags = lint_source(HOT, src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RULE_THREAD);
        assert!(lint_source("crates/fpga/src/sched.rs", src).is_empty());
        assert!(lint_source("crates/fpga/src/parallel.rs", src).is_empty());
        let branch = "fn f(worker_index: usize) { if worker_index == 0 { shortcut(); } }\n";
        assert_eq!(lint_source(HOT, branch)[0].rule, RULE_THREAD);
    }

    #[test]
    fn float_accumulation_fires_only_near_weight() {
        let bad = "fn f(w: Weight) -> Weight {\n let mut acc: f64 = 0.0;\n acc += w.as_f64();\n Weight::from_milli((acc * 1000.0) as u64)\n}\n";
        let diags = lint_source(HOT, bad);
        assert!(
            diags.iter().any(|d| d.rule == RULE_FLOAT),
            "accumulation near Weight fires: {diags:#?}"
        );
        let no_weight = "fn f() -> f64 {\n let mut acc: f64 = 0.0;\n acc += 1.5;\n acc\n}\n";
        assert!(
            lint_source(HOT, no_weight).is_empty(),
            "float math with no Weight in the file is reporting, not cost math"
        );
    }

    #[test]
    fn waivers_and_tests_escape_the_family() {
        let waived = "fn f(m: &HashMap<u32, u32>) {\n\
                      // lint: allow(determinism-hash-iter): accumulation below is commutative\n\
                      for (_, v) in m { total_add(v); }\n}\n";
        assert!(lint_source(HOT, waived).is_empty());
        let in_tests = "#[cfg(test)]\nmod tests {\n fn t(m: &HashMap<u32, u32>) { for v in m.values() { check(v); } }\n}\n";
        assert!(lint_source(HOT, in_tests).is_empty());
    }

    #[test]
    fn aux_scope_covers_integration_tests_and_benches() {
        let src = "fn helper(m: &HashMap<u32, u32>) {\n for (k, v) in m { assert_order(k, v); }\n}\n";
        assert_eq!(lint_source("tests/pathfinder.rs", src).len(), 1);
        assert_eq!(lint_source("crates/bench/benches/kernel.rs", src).len(), 1);
        assert!(
            lint_source("crates/lint/tests/fixtures_fire.rs", src).is_empty(),
            "the linter's own tests are fixture text, not scanned"
        );
    }
}
