//! Rule `commit-path-mutation`: `SharedPassGraph` write access stays on
//! the scheduler's commit paths.
//!
//! The wavefront's soundness argument (DESIGN.md §5c, `shared.rs` module
//! docs) assumes a **single writer**: all mutation of the shared pass
//! graph flows through the committer's `SharedPassWriter`, every commit
//! records its invalidated nodes in the changed log, and workers only
//! ever hold read views. The type system cannot enforce that — the
//! writer handle is obtainable from any shared borrow — so this rule
//! does: naming `SharedPassWriter`, or calling `.writer()` / `.publish()`,
//! anywhere but the scheduler commit modules is a diagnostic. A second
//! writer elsewhere would mutate state that no changed set records,
//! which the read-set conflict check could never detect.
//!
//! The negotiated-congestion router makes the same argument for its
//! cost-update phase: `.reprice_edges(` bulk-rewrites every edge weight
//! of the priced snapshot, and its delta variant
//! `.reprice_incident_edges(` rewrites the edges around nodes whose
//! pressure changed — either is only sound after the route phase's
//! workers have joined. Calling them anywhere but `pathfinder.rs` (or
//! the graph crate that defines them) would mutate prices some overlay
//! might still be reading through.

use crate::{Diagnostic, FileCtx};

/// Rule name, as used in `allow(...)` markers.
pub const RULE: &str = "commit-path-mutation";

/// Where write access is legitimate: the defining crate (the handle's
/// own implementation and tests), the two scheduler commit paths, and
/// the negotiated-congestion single-writer cost-update phase.
fn allowed(path: &str) -> bool {
    path.starts_with("crates/graph/")
        || path.starts_with("crates/lint/")
        || path == "crates/fpga/src/sched.rs"
        || path == "crates/fpga/src/parallel.rs"
        || path == "crates/fpga/src/pathfinder.rs"
}

pub fn check(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    if allowed(ctx.path) {
        return Vec::new();
    }
    let code: Vec<usize> = ctx.code_indices().collect();
    let mut diags = Vec::new();
    for (k, &i) in code.iter().enumerate() {
        let tok = &ctx.tokens[i];
        let next = |o: usize| code.get(k + o).map(|&j| &ctx.tokens[j]);
        let offender = if tok.is_ident("SharedPassWriter") {
            Some("`SharedPassWriter` named".to_string())
        } else if tok.is_punct(".")
            && next(1).is_some_and(|t| {
                t.is_ident("writer")
                    || t.is_ident("publish")
                    || t.is_ident("reprice_edges")
                    || t.is_ident("reprice_incident_edges")
            })
            && next(2).is_some_and(|t| t.is_punct("("))
        {
            next(1).map(|t| format!("`.{}()` called", t.text))
        } else {
            None
        };
        if let Some(what) = offender {
            let line = if tok.is_punct(".") {
                next(1).map_or(tok.line, |t| t.line)
            } else {
                tok.line
            };
            diags.push(Diagnostic {
                path: ctx.path.to_string(),
                line,
                rule: RULE,
                message: format!("{what} outside the single-writer commit paths"),
                hint: "mutate shared routing state only from its single-writer module \
                       (sched.rs/parallel.rs for the pass graph, pathfinder.rs for snapshot \
                       repricing); read through SharedPassView or an overlay instead"
                    .to_string(),
            });
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint_source;

    #[test]
    fn writer_acquisition_fires_outside_commit_paths() {
        let src = "fn f(shared: &SharedPassGraph) { let mut w = shared.writer(); }\n";
        let diags = lint_source("crates/fpga/src/width.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RULE);
        assert!(lint_source("crates/fpga/src/sched.rs", src).is_empty());
        assert!(lint_source("crates/fpga/src/parallel.rs", src).is_empty());
        assert!(lint_source("crates/graph/src/shared.rs", src).is_empty());
    }

    #[test]
    fn naming_the_writer_type_fires() {
        let src = "fn f(w: SharedPassWriter<'_>) {}\n";
        assert_eq!(lint_source("crates/fpga/src/router.rs", src).len(), 1);
    }

    #[test]
    fn reprice_fires_outside_the_pathfinder_cost_update() {
        let src = "fn f(g: &mut Graph) { g.reprice_edges(|_, _, _, w| w); }\n";
        let diags = lint_source("crates/fpga/src/router.rs", src);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("reprice_edges"));
        assert!(lint_source("crates/fpga/src/pathfinder.rs", src).is_empty());
        assert!(lint_source("crates/graph/src/graph.rs", src).is_empty());
    }

    #[test]
    fn delta_reprice_fires_outside_the_pathfinder_cost_update() {
        let src = "fn f(g: &mut Graph) { g.reprice_incident_edges(&[], |_, _, _, w| w); }\n";
        let diags = lint_source("crates/fpga/src/router.rs", src);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("reprice_incident_edges"));
        assert!(lint_source("crates/fpga/src/pathfinder.rs", src).is_empty());
        assert!(lint_source("crates/graph/src/graph.rs", src).is_empty());
    }

    #[test]
    fn publish_fires_but_views_do_not() {
        assert_eq!(
            lint_source("crates/fpga/src/baseline.rs", "fn f(w: &W) { w.publish(3); }\n").len(),
            1
        );
        let views = "fn f(s: &SharedPassGraph) { let v = s.view(); let q = s.commit_seq(); }\n";
        assert!(lint_source("crates/fpga/src/baseline.rs", views).is_empty());
    }
}
