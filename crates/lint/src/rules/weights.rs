//! Rule `saturating-weights`: no bare `+`/`-`/`*` on `Weight`-typed
//! values outside `weight.rs`/`multiweight.rs`.
//!
//! `Weight`'s operator impls are *checked* — they panic on
//! overflow/underflow — which is the right behavior inside the weight
//! modules' own invariant-guarded code but a mid-pass crash hazard
//! everywhere else: congestion pressure saturates edges toward
//! `Weight::MAX`, and an aggregate like `total + w` on a saturated
//! graph aborts the whole route. Call sites outside the weight modules
//! must use `saturating_add`/`saturating_sub`/`scale` (or `checked_*`
//! with explicit handling).
//!
//! Detection is a per-file taint pass over the token stream: an
//! identifier annotated `: Weight`/`: MultiWeight` or initialized from
//! `Weight::…` is weight-tainted, and a bare binary `+`/`-`/`*` (or
//! `+=`/`-=`/`*=`) with a tainted operand is a diagnostic. Scope-blind
//! by design — a false positive is one justified allow-marker away,
//! while a false negative is a latent panic.

use std::collections::HashSet;

use crate::lexer::TokenKind;
use crate::{Diagnostic, FileCtx};

/// Rule name, as used in `allow(...)` markers.
pub const RULE: &str = "saturating-weights";

/// The modules that own `Weight`'s representation and its checked
/// operator impls; bare arithmetic is their prerogative.
fn exempt_path(path: &str) -> bool {
    path == "crates/graph/src/weight.rs"
        || path == "crates/graph/src/multiweight.rs"
        || path.starts_with("crates/lint/")
}

const WEIGHT_TYPES: &[&str] = &["Weight", "MultiWeight"];

/// Keywords that can precede an operator without making it binary
/// (`return -x`, `as *const T`, `&mut *p`, …).
const KEYWORDS: &[&str] = &[
    "let", "mut", "return", "if", "else", "match", "in", "as", "ref", "move", "fn", "impl", "pub",
    "use", "const", "static", "where", "for", "while", "loop", "break", "continue", "struct",
    "enum", "trait", "type", "mod", "crate", "super", "dyn", "unsafe", "async", "await",
];

pub fn check(ctx: &FileCtx<'_>) -> Vec<Diagnostic> {
    if exempt_path(ctx.path) {
        return Vec::new();
    }
    let code: Vec<usize> = ctx.code_indices().collect();

    // --- taint pass: which identifiers hold Weight values ---------------
    let mut tainted: HashSet<&str> = HashSet::new();
    for (k, &i) in code.iter().enumerate() {
        let tok = &ctx.tokens[i];
        if tok.kind != TokenKind::Ident || KEYWORDS.contains(&tok.text.as_str()) {
            continue;
        }
        let next = |o: usize| code.get(k + o).map(|&j| &ctx.tokens[j]);
        // `other.x = Weight::…` is a *field* of some other value; tainting
        // the bare name would bleed onto unrelated locals called `x`.
        if k.checked_sub(1).is_some_and(|p| ctx.tokens[code[p]].is_punct(".")) {
            continue;
        }
        // `x: Weight` (let annotation, fn param, struct field) — but not
        // `x: Weight<...>`-style paths into other generics, which Weight
        // never has.
        let annotated = next(1).is_some_and(|t| t.is_punct(":"))
            && next(2).is_some_and(|t| {
                t.kind == TokenKind::Ident && WEIGHT_TYPES.contains(&t.text.as_str())
            })
            && next(3).is_none_or(|t| !t.is_punct("::"));
        // `x = Weight::...` (initialization from a constructor/constant).
        let constructed = next(1).is_some_and(|t| t.is_punct("="))
            && next(2).is_some_and(|t| {
                t.kind == TokenKind::Ident && WEIGHT_TYPES.contains(&t.text.as_str())
            })
            && next(3).is_some_and(|t| t.is_punct("::"));
        if annotated || constructed {
            tainted.insert(tok.text.as_str());
        }
    }
    if tainted.is_empty() {
        return Vec::new();
    }

    // --- operator pass ---------------------------------------------------
    let mut diags = Vec::new();
    for (k, &i) in code.iter().enumerate() {
        if ctx.in_test[i] {
            continue;
        }
        let tok = &ctx.tokens[i];
        if tok.kind != TokenKind::Punct {
            continue;
        }
        let op = tok.text.as_str();
        let compound = matches!(op, "+=" | "-=" | "*=");
        if !compound && !matches!(op, "+" | "-" | "*") {
            continue;
        }
        let prev = k.checked_sub(1).map(|p| &ctx.tokens[code[p]]);
        let next = code.get(k + 1).map(|&j| &ctx.tokens[j]);
        // Binary position: something value-like on the left.
        let left_valueish = prev.is_some_and(|t| match t.kind {
            TokenKind::Ident => !KEYWORDS.contains(&t.text.as_str()),
            TokenKind::Literal => true,
            TokenKind::Punct => t.text == ")" || t.text == "]",
            _ => false,
        });
        if !left_valueish {
            continue;
        }
        let left_name = prev.filter(|t| t.kind == TokenKind::Ident).map(|t| t.text.as_str());
        // First identifier of the right operand (skipping `&` and `(`),
        // with its offset so projections can be inspected.
        let right = match next {
            Some(t) if t.kind == TokenKind::Ident => Some((k + 1, t.text.as_str())),
            Some(t) if t.is_punct("&") || t.is_punct("(") => code
                .get(k + 2)
                .map(|&j| &ctx.tokens[j])
                .filter(|t| t.kind == TokenKind::Ident)
                .map(|t| (k + 2, t.text.as_str())),
            _ => None,
        };
        // `w.as_f64() - …` projects the Weight to a primitive first; the
        // arithmetic is not Weight arithmetic.
        let right_name = right
            .filter(|&(p, _)| {
                !(code.get(p + 1).is_some_and(|&j| ctx.tokens[j].is_punct("."))
                    && code
                        .get(p + 2)
                        .is_some_and(|&j| ctx.tokens[j].text.starts_with("as_")))
            })
            .map(|(_, name)| name);
        let offender = [left_name, right_name]
            .into_iter()
            .flatten()
            .find(|n| tainted.contains(n));
        if let Some(name) = offender {
            diags.push(Diagnostic {
                path: ctx.path.to_string(),
                line: tok.line,
                rule: RULE,
                message: format!(
                    "bare `{op}` on Weight-typed value `{name}` (panics on overflow)"
                ),
                hint: "use saturating_add/saturating_sub/scale (or checked_* with handling) — \
                       congestion drives weights toward Weight::MAX mid-pass"
                    .to_string(),
            });
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint_source;

    #[test]
    fn bare_add_on_annotated_weight_fires() {
        let src = "fn f(total: Weight, w: Weight) -> Weight { total + w }\n";
        let diags = lint_source("crates/core/src/newalgo.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RULE);
        assert!(diags[0].message.contains('+'));
    }

    #[test]
    fn constructor_initialization_taints() {
        let src = "fn f() { let base = Weight::UNIT; let x = base * 3; }\n";
        assert_eq!(lint_source("crates/fpga/src/newmod.rs", src).len(), 1);
    }

    #[test]
    fn compound_assignment_fires() {
        let src = "fn f(mut acc: Weight, w: Weight) { acc += w; }\n";
        assert_eq!(lint_source("crates/core/src/newalgo.rs", src).len(), 1);
    }

    #[test]
    fn saturating_calls_and_untainted_arithmetic_pass() {
        let src = "fn f(total: Weight, w: Weight, n: usize) -> Weight {\n\
                   let _ = n + 1;\n\
                   total.saturating_add(w)\n}\n";
        assert!(lint_source("crates/core/src/newalgo.rs", src).is_empty());
    }

    #[test]
    fn unary_and_type_positions_do_not_fire() {
        let src = "fn f(w: Weight) -> i64 { let p: *const Weight = &w; let _ = p; -1 }\n";
        assert!(lint_source("crates/core/src/newalgo.rs", src).is_empty());
    }

    #[test]
    fn field_assignments_do_not_taint_bare_locals() {
        // The float local does owe a determinism-float-weight diagnostic
        // these days; this test only pins that *saturating-weights*
        // stays quiet on the untainted bare local.
        let src = "fn f(c: &mut C) { c.jogs = Weight::UNIT; let mut jogs = 0.0; jogs += 1.0; }\n";
        assert!(lint_source("crates/core/src/newalgo.rs", src)
            .iter()
            .all(|d| d.rule != RULE));
    }

    #[test]
    fn projections_to_primitives_are_not_weight_arithmetic() {
        let src = "fn f(value: Weight, reference: Weight) -> f64 {\n\
                   (value.as_f64() - reference.as_f64()) / reference.as_f64()\n}\n";
        assert!(lint_source("crates/core/src/newalgo.rs", src).is_empty());
    }

    #[test]
    fn lowerbound_module_is_covered_not_exempt() {
        // The potential providers do exactly the arithmetic this rule
        // exists to police — `d ⊖ hi` landmark bounds near saturated
        // weights — so `lowerbound.rs` must NOT join the exempt set.
        let bare = "fn h(d: Weight, hi: Weight) -> Weight { d - hi }\n";
        let diags = lint_source("crates/graph/src/lowerbound.rs", bare);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, RULE);
        let saturating = "fn h(d: Weight, hi: Weight) -> Weight {\n\
                          let lo = d.saturating_sub(hi);\n\
                          lo.saturating_add(Weight::ZERO)\n}\n";
        assert!(lint_source("crates/graph/src/lowerbound.rs", saturating).is_empty());
        // Same for the CSR snapshot's weight lanes.
        let csr = "fn pack(w: Weight, tilt: Weight) -> Weight { w + tilt }\n";
        assert_eq!(lint_source("crates/graph/src/csr.rs", csr).len(), 1);
    }

    #[test]
    fn weight_modules_are_exempt() {
        let src = "fn f(a: Weight, b: Weight) -> Weight { a + b }\n";
        assert!(lint_source("crates/graph/src/weight.rs", src).is_empty());
        assert!(lint_source("crates/graph/src/multiweight.rs", src).is_empty());
    }
}
