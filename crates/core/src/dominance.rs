//! Graph dominance (paper Definition 4.1).
//!
//! Given a source `n0`, node `p` *dominates* node `s` when
//! `minpath(n0, p) == minpath(n0, s) + minpath(s, p)` — i.e. some shortest
//! path from the source to `p` may pass through `s`. This generalizes the
//! coordinatewise dominance of the rectilinear RSA heuristic to arbitrary
//! weighted graphs and is the pivot of both arborescence heuristics: PFA
//! folds paths at maximal doubly-dominated nodes, and DOM connects each sink
//! to the nearest node it dominates.

use route_graph::Weight;

/// Returns `true` if a node at source-distance `d0_p` dominates a node at
/// source-distance `d0_s` that lies `dist_sp` away from it.
///
/// All quantities are exact fixed-point [`Weight`]s, so this equality is
/// meaningful (no floating-point drift).
///
/// # Example
///
/// ```
/// use route_graph::Weight;
/// use steiner_route::dominance::dominates;
///
/// let u = Weight::from_units;
/// // p at distance 5, s at distance 3, and s is 2 away from p:
/// assert!(dominates(u(5), u(3), u(2)));
/// // …but not if s is 3 away (the path via s would cost 6 > 5):
/// assert!(!dominates(u(5), u(3), u(3)));
/// ```
#[must_use]
pub fn dominates(d0_p: Weight, d0_s: Weight, dist_sp: Weight) -> bool {
    d0_p == d0_s.saturating_add(dist_sp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use route_graph::{GridGraph, ShortestPaths};

    #[test]
    fn every_node_dominates_the_source() {
        let u = Weight::from_units;
        assert!(dominates(u(7), Weight::ZERO, u(7)));
    }

    #[test]
    fn every_node_dominates_itself() {
        let u = Weight::from_units;
        assert!(dominates(u(7), u(7), Weight::ZERO));
    }

    #[test]
    fn grid_dominance_matches_rectilinear_dominance() {
        // On a virgin grid with the source at the origin, graph dominance
        // coincides with coordinatewise (rectilinear) dominance — the
        // motivating special case of Definition 4.1 (paper Figure 7).
        let grid = GridGraph::new(5, 5, Weight::UNIT).unwrap();
        let src = grid.node_at(0, 0).unwrap();
        let d0 = ShortestPaths::run(grid.graph(), src).unwrap();
        for pr in 0..5 {
            for pc in 0..5 {
                for sr in 0..5 {
                    for sc in 0..5 {
                        let p = grid.node_at(pr, pc).unwrap();
                        let s = grid.node_at(sr, sc).unwrap();
                        let sp = ShortestPaths::run(grid.graph(), s).unwrap();
                        let graph_dom = dominates(
                            d0.dist(p).unwrap(),
                            d0.dist(s).unwrap(),
                            sp.dist(p).unwrap(),
                        );
                        let rect_dom = pr >= sr && pc >= sc;
                        assert_eq!(graph_dom, rect_dom, "p=({pr},{pc}) s=({sr},{sc})");
                    }
                }
            }
        }
    }
}
