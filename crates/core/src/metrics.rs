//! Evaluation metrics: wirelength and maximum source-sink pathlength.
//!
//! The paper's Table 1 reports, per heuristic, the average *wirelength*
//! normalized to KMB and the average *maximum pathlength* normalized to the
//! optimum (`max_i minpath_G(n0, n_i)`). These helpers compute both,
//! including the percentage normalizations.

use route_graph::{Graph, ShortestPaths, Weight};

use crate::{Net, RoutingTree, SteinerError};

/// The two qualities Table 1 tracks for a single routed net.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetMetrics {
    /// Total wirelength `cost(T)`.
    pub wirelength: Weight,
    /// Maximum source-to-sink pathlength inside the tree.
    pub max_pathlength: Weight,
}

/// Measures a routing tree against its net.
///
/// # Errors
///
/// Returns [`SteinerError::MissingTerminal`] if the tree does not span the
/// net.
pub fn measure(tree: &RoutingTree, net: &Net) -> Result<NetMetrics, SteinerError> {
    Ok(NetMetrics {
        wirelength: tree.cost(),
        max_pathlength: tree.max_pathlength(net)?,
    })
}

/// The optimal maximum pathlength for a net: the farthest sink's true
/// shortest-path distance, `max_i minpath_G(n0, n_i)`.
///
/// # Errors
///
/// Returns [`SteinerError::Graph`] if the source is invalid or a sink is
/// unreachable.
pub fn optimal_max_pathlength(g: &Graph, net: &Net) -> Result<Weight, SteinerError> {
    let sp = ShortestPaths::run_to_targets(g, net.source(), net.sinks())?;
    let mut max = Weight::ZERO;
    for &s in net.sinks() {
        let d = sp
            .dist(s)
            .ok_or(route_graph::GraphError::Disconnected {
                from: net.source(),
                to: s,
            })?;
        max = max.max(d);
    }
    Ok(max)
}

/// Percentage deviation of `value` from `reference`, as reported in
/// Table 1: positive = disimprovement (larger), negative = improvement.
///
/// Returns `0.0` when the reference is zero (both must then be zero for a
/// meaningful instance).
#[must_use]
pub fn percent_vs(value: Weight, reference: Weight) -> f64 {
    if reference.is_zero() {
        return 0.0;
    }
    (value.as_f64() - reference.as_f64()) / reference.as_f64() * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Kmb, Pfa, SteinerHeuristic};
    use route_graph::GridGraph;

    #[test]
    fn measure_reads_both_qualities() {
        let grid = GridGraph::new(5, 5, Weight::UNIT).unwrap();
        let net = Net::new(
            grid.node_at(0, 0).unwrap(),
            vec![grid.node_at(4, 2).unwrap(), grid.node_at(2, 4).unwrap()],
        )
        .unwrap();
        let tree = Pfa::new().construct(grid.graph(), &net).unwrap();
        let m = measure(&tree, &net).unwrap();
        assert_eq!(m.wirelength, Weight::from_units(8));
        assert_eq!(m.max_pathlength, Weight::from_units(6));
    }

    #[test]
    fn optimal_max_pathlength_is_the_farthest_sink() {
        let grid = GridGraph::new(6, 6, Weight::UNIT).unwrap();
        let net = Net::new(
            grid.node_at(0, 0).unwrap(),
            vec![grid.node_at(1, 1).unwrap(), grid.node_at(5, 5).unwrap()],
        )
        .unwrap();
        assert_eq!(
            optimal_max_pathlength(grid.graph(), &net).unwrap(),
            Weight::from_units(10)
        );
    }

    #[test]
    fn arborescences_hit_the_optimal_pathlength() {
        
        let mut rng = route_graph::rng::SplitMix64::seed_from_u64(61);
        let grid = GridGraph::new(8, 8, Weight::UNIT).unwrap();
        for _ in 0..10 {
            let pins = route_graph::random::random_net(grid.graph(), 5, &mut rng).unwrap();
            let net = Net::from_terminals(pins).unwrap();
            let tree = Pfa::new().construct(grid.graph(), &net).unwrap();
            let m = measure(&tree, &net).unwrap();
            assert_eq!(
                m.max_pathlength,
                optimal_max_pathlength(grid.graph(), &net).unwrap()
            );
        }
    }

    #[test]
    fn steiner_trees_can_exceed_optimal_pathlength() {
        // A KMB tree optimizes wirelength only; find a seeded instance
        // where its max pathlength exceeds the optimum (Table 1 shows this
        // is the common case: +23.5% on average for 5-pin nets).
        
        let mut rng = route_graph::rng::SplitMix64::seed_from_u64(62);
        let grid = GridGraph::new(8, 8, Weight::UNIT).unwrap();
        let mut exceeded = false;
        for _ in 0..30 {
            let pins = route_graph::random::random_net(grid.graph(), 6, &mut rng).unwrap();
            let net = Net::from_terminals(pins).unwrap();
            let tree = Kmb::new().construct(grid.graph(), &net).unwrap();
            let m = measure(&tree, &net).unwrap();
            let opt = optimal_max_pathlength(grid.graph(), &net).unwrap();
            assert!(m.max_pathlength >= opt);
            if m.max_pathlength > opt {
                exceeded = true;
            }
        }
        assert!(exceeded, "KMB never exceeded the optimal radius in 30 nets");
    }

    #[test]
    fn percent_vs_signs() {
        let u = Weight::from_units;
        assert!((percent_vs(u(11), u(10)) - 10.0).abs() < 1e-9);
        assert!((percent_vs(u(9), u(10)) + 10.0).abs() < 1e-9);
        assert_eq!(percent_vs(u(0), u(0)), 0.0);
        assert_eq!(percent_vs(u(5), u(5)), 0.0);
    }
}
