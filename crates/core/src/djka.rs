//! DJKA: Dijkstra's shortest-paths tree adapted to nets (paper §5).
//!
//! Dijkstra's algorithm spans all of `V`; the GSA problem only needs the
//! net. DJKA computes the shortest-paths tree rooted at the source and
//! deletes every edge not contained in some source-to-sink path — i.e. it
//! keeps exactly the union of the tree paths to the sinks.
//!
//! DJKA is the weakest arborescence baseline in Table 1: optimal maximum
//! pathlength by construction, but no wirelength sharing beyond what the
//! SPT happens to provide.

use route_graph::{EdgeId, GraphView, ShortestPaths};

use crate::heuristic::{HeuristicInfo, SteinerHeuristic};
use crate::{Net, RoutingTree, SteinerError};

/// The DJKA arborescence baseline.
///
/// # Example
///
/// ```
/// use route_graph::{GridGraph, Weight};
/// use steiner_route::{Djka, Net, SteinerHeuristic};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let grid = GridGraph::new(4, 4, Weight::UNIT)?;
/// let net = Net::new(
///     grid.node_at(0, 0)?,
///     vec![grid.node_at(3, 1)?, grid.node_at(1, 3)?],
/// )?;
/// let tree = Djka::new().construct(grid.graph(), &net)?;
/// assert!(tree.is_shortest_paths_tree(grid.graph(), &net)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Djka;

impl Djka {
    /// Creates the heuristic.
    #[must_use]
    pub fn new() -> Djka {
        Djka
    }
}

impl HeuristicInfo for Djka {
    fn name(&self) -> &str {
        "DJKA"
    }
}

impl<G: GraphView> SteinerHeuristic<G> for Djka {
    fn construct(&self, g: &G, net: &Net) -> Result<RoutingTree, SteinerError> {
        net.validate_in(g)?;
        // Stop the run once the last sink settles: every node on a shortest
        // path to a sink settles before that sink, so the extracted paths
        // are identical to a full run's while the read set stays bounded
        // by the sinks' neighborhood.
        let sp = ShortestPaths::run_to_targets(g, net.source(), net.sinks())?;
        let mut edges: Vec<EdgeId> = Vec::new();
        for &sink in net.sinks() {
            let path = sp.path_to(sink)?;
            edges.extend_from_slice(path.edges());
        }
        // Paths out of one SPT share prefixes, so the deduplicated union is
        // a tree by construction.
        RoutingTree::from_edges(g, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use route_graph::{Graph, GridGraph, NodeId, Weight};

    #[test]
    fn produces_an_arborescence() {
        let grid = GridGraph::new(6, 6, Weight::UNIT).unwrap();
        let net = Net::new(
            grid.node_at(0, 0).unwrap(),
            vec![
                grid.node_at(5, 0).unwrap(),
                grid.node_at(0, 5).unwrap(),
                grid.node_at(5, 5).unwrap(),
            ],
        )
        .unwrap();
        let tree = Djka::new().construct(grid.graph(), &net).unwrap();
        assert!(tree.spans(&net));
        assert!(tree.is_shortest_paths_tree(grid.graph(), &net).unwrap());
        assert_eq!(
            tree.max_pathlength(&net).unwrap(),
            Weight::from_units(10)
        );
    }

    #[test]
    fn shares_common_prefixes() {
        // Two sinks straight down the same column: the union is one path.
        let grid = GridGraph::new(5, 1, Weight::UNIT).unwrap();
        let net = Net::new(
            grid.node_at(0, 0).unwrap(),
            vec![grid.node_at(2, 0).unwrap(), grid.node_at(4, 0).unwrap()],
        )
        .unwrap();
        let tree = Djka::new().construct(grid.graph(), &net).unwrap();
        assert_eq!(tree.cost(), Weight::from_units(4));
    }

    #[test]
    fn ignores_unrelated_parts_of_the_spt() {
        let grid = GridGraph::new(5, 5, Weight::UNIT).unwrap();
        let net = Net::new(
            grid.node_at(2, 2).unwrap(),
            vec![grid.node_at(2, 4).unwrap()],
        )
        .unwrap();
        let tree = Djka::new().construct(grid.graph(), &net).unwrap();
        assert_eq!(tree.cost(), Weight::from_units(2));
        assert_eq!(tree.node_len(), 3);
    }

    #[test]
    fn unreachable_sink_errors() {
        let mut g = Graph::with_nodes(3);
        let n: Vec<NodeId> = g.node_ids().collect();
        g.add_edge(n[0], n[1], Weight::UNIT).unwrap();
        let net = Net::new(n[0], vec![n[2]]).unwrap();
        assert!(matches!(
            Djka::new().construct(&g, &net),
            Err(SteinerError::Graph(
                route_graph::GraphError::Disconnected { .. }
            ))
        ));
    }

    #[test]
    fn respects_congested_weights() {
        // Make the straight corridor expensive; DJKA must still produce a
        // weighted-shortest route (which detours) and the tree distance
        // must equal the graph distance.
        let mut grid = GridGraph::new(3, 3, Weight::UNIT).unwrap();
        let mid_left = grid.node_at(1, 0).unwrap();
        let mid_center = grid.node_at(1, 1).unwrap();
        let e = grid.edge_between(mid_left, mid_center).unwrap();
        grid.graph_mut()
            .set_weight(e, Weight::from_units(10))
            .unwrap();
        let net = Net::new(mid_left, vec![grid.node_at(1, 2).unwrap()]).unwrap();
        let tree = Djka::new().construct(grid.graph(), &net).unwrap();
        assert!(tree.is_shortest_paths_tree(grid.graph(), &net).unwrap());
        assert_eq!(tree.cost(), Weight::from_units(4));
    }
}
