//! The DOM spanning-arborescence heuristic (paper §4.2).
//!
//! DOM connects each sink, via a shortest path, to the *closest*
//! sink-or-source that it dominates, then extracts a shortest-paths tree
//! over the union of those paths. Equivalently (and this is how its cost is
//! priced inside IDOM), it is a minimum-cost shortest-paths spanning
//! arborescence over the net's distance graph — computable in `O(|N|²)`
//! once the distance graph is known, which is the per-call cost the paper
//! cites for the IDOM inner loop.

use route_graph::{EdgeId, GraphError, GraphView, NodeId, TerminalDistances, Weight};

use crate::dominance::dominates;
use crate::heuristic::{
    construct_via_base, require_connected, HeuristicInfo, IteratedBase, IteratedBaseInfo,
    SteinerHeuristic,
};
use crate::subgraph::spt_over_edges;
use crate::{Net, RoutingTree, SteinerError};

/// The DOM heuristic: a restricted PFA where merge points are constrained
/// to the net itself.
///
/// Also serves as the base of the iterated **IDOM** construction via
/// [`IteratedBase`], where its [`cost_with`](IteratedBase::cost_with)
/// override prices candidates with the `O(k²)` distance-graph arborescence
/// cost instead of building the full tree.
///
/// # Example
///
/// ```
/// use route_graph::{GridGraph, Weight};
/// use steiner_route::{Dom, Net, SteinerHeuristic};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let grid = GridGraph::new(5, 5, Weight::UNIT)?;
/// let net = Net::new(
///     grid.node_at(0, 0)?,
///     vec![grid.node_at(2, 2)?, grid.node_at(4, 4)?],
/// )?;
/// let tree = Dom::new().construct(grid.graph(), &net)?;
/// // (2,2) dominates nothing closer than the source; (4,4) dominates
/// // (2,2): the tree chains through it and costs 8.
/// assert_eq!(tree.cost(), Weight::from_units(8));
/// assert!(tree.is_shortest_paths_tree(grid.graph(), &net)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Dom;

impl Dom {
    /// Creates the heuristic.
    #[must_use]
    pub fn new() -> Dom {
        Dom
    }
}

impl HeuristicInfo for Dom {
    fn name(&self) -> &str {
        "DOM"
    }
}

impl<G: GraphView> SteinerHeuristic<G> for Dom {
    fn construct(&self, g: &G, net: &Net) -> Result<RoutingTree, SteinerError> {
        construct_via_base(self, g, net)
    }
}

/// The member view DOM works over: the terminals of `td` plus an optional
/// external candidate, with index `td.len()` denoting the candidate.
struct Members<'a> {
    td: &'a TerminalDistances,
    candidate: Option<NodeId>,
}

impl Members<'_> {
    fn len(&self) -> usize {
        self.td.len() + usize::from(self.candidate.is_some())
    }

    fn node(&self, i: usize) -> NodeId {
        if i < self.td.len() {
            self.td.terminals()[i]
        } else {
            self.candidate.expect("index implies candidate")
        }
    }

    /// Distance from the source (member 0).
    fn d0(&self, i: usize) -> Option<Weight> {
        if i < self.td.len() {
            self.td.dist(0, i)
        } else {
            self.td
                .dist_to_node(0, self.candidate.expect("index implies candidate"))
        }
    }

    fn dist(&self, i: usize, j: usize) -> Option<Weight> {
        let base = self.td.len();
        match (i == base, j == base) {
            (false, false) => self.td.dist(i, j),
            (true, false) => self
                .td
                .dist_to_node(j, self.candidate.expect("index implies candidate")),
            (false, true) => self
                .td
                .dist_to_node(i, self.candidate.expect("index implies candidate")),
            (true, true) => Some(Weight::ZERO),
        }
    }

    fn path(&self, i: usize, j: usize) -> Result<route_graph::Path, SteinerError> {
        let base = self.td.len();
        let path = match (i == base, j == base) {
            (false, false) => self.td.path(i, j)?,
            (true, false) => self
                .td
                .path_to_node(j, self.candidate.expect("index implies candidate"))?,
            (false, true) => self
                .td
                .path_to_node(i, self.candidate.expect("index implies candidate"))?,
            (true, true) => unreachable!("a pair never consists of the candidate twice"),
        };
        Ok(path)
    }

    /// For each non-source member `p`, the dominated member it connects to
    /// and the connection cost: the closest `s ≠ p` such that `p` dominates
    /// `s` and `(d0(s), s) <lex (d0(p), p)` (the lexicographic constraint
    /// breaks zero-distance dominance cycles; the source, at `d0 = 0`, is
    /// always available).
    fn parents(&self) -> Result<Vec<(usize, Weight)>, SteinerError> {
        let k = self.len();
        let mut out = Vec::with_capacity(k.saturating_sub(1));
        for p in 1..k {
            let d0p = self.d0(p).ok_or(SteinerError::Graph(GraphError::Disconnected {
                from: self.node(0),
                to: self.node(p),
            }))?;
            let mut best: Option<(Weight, Weight, usize)> = None; // (dist, d0s, s)
            for s in 0..k {
                if s == p {
                    continue;
                }
                let (Some(d0s), Some(dsp)) = (self.d0(s), self.dist(s, p)) else {
                    continue;
                };
                if !dominates(d0p, d0s, dsp) {
                    continue;
                }
                if (d0s, s) >= (d0p, p) {
                    continue;
                }
                if best.is_none_or(|(bd, bd0, bs)| (dsp, d0s, s) < (bd, bd0, bs)) {
                    best = Some((dsp, d0s, s));
                }
            }
            let (dsp, _, s) = best.expect("the source is always a dominated option");
            out.push((s, dsp));
        }
        if route_trace::enabled() {
            route_trace::count(route_trace::Counter::DomConnections, out.len() as u64);
        }
        Ok(out)
    }
}

impl IteratedBaseInfo for Dom {
    fn base_name(&self) -> &str {
        "DOM"
    }

    /// DOM's dominance pricing and path expansion query `td` only between
    /// members (terminals plus the candidate) — [`Members`] never reads a
    /// distance to an arbitrary graph node — so target-restricted runs are
    /// exact for it.
    fn supports_target_restricted_distances(&self) -> bool {
        true
    }
}

impl<G: GraphView> IteratedBase<G> for Dom {
    fn cost_with(
        &self,
        _g: &G,
        td: &TerminalDistances,
        candidate: Option<NodeId>,
    ) -> Result<Weight, SteinerError> {
        require_connected(td, candidate)?;
        let members = Members { td, candidate };
        Ok(members.parents()?.into_iter().map(|(_, d)| d).sum())
    }

    fn build_with(
        &self,
        g: &G,
        td: &TerminalDistances,
        candidate: Option<NodeId>,
    ) -> Result<RoutingTree, SteinerError> {
        require_connected(td, candidate)?;
        let members = Members { td, candidate };
        let parents = members.parents()?;
        let mut union: Vec<EdgeId> = Vec::new();
        for (p, &(s, _)) in parents.iter().enumerate() {
            let p = p + 1; // parents() starts at member 1
            let path = members.path(s, p)?;
            union.extend_from_slice(path.edges());
        }
        let spt = spt_over_edges(g, &union, members.node(0))?;
        let tree = RoutingTree::from_edges(g, spt)?;
        let mut keep: Vec<NodeId> = td.terminals().to_vec();
        if let Some(c) = candidate {
            keep.push(c);
        }
        tree.pruned_to(g, &keep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use route_graph::{Graph, GridGraph};

    fn corners_net(grid: &GridGraph) -> Net {
        Net::new(
            grid.node_at(0, 0).unwrap(),
            vec![
                grid.node_at(4, 0).unwrap(),
                grid.node_at(0, 4).unwrap(),
                grid.node_at(4, 4).unwrap(),
            ],
        )
        .unwrap()
    }

    #[test]
    fn produces_an_arborescence_with_sharing() {
        let grid = GridGraph::new(5, 5, Weight::UNIT).unwrap();
        let net = corners_net(&grid);
        let tree = Dom::new().construct(grid.graph(), &net).unwrap();
        assert!(tree.spans(&net));
        assert!(tree.is_shortest_paths_tree(grid.graph(), &net).unwrap());
        // The far corner dominates both near corners; DOM chains through
        // one of them: cost 4 + 4 + 8 = 16 at worst, and never below the
        // 12-unit Steiner optimum.
        assert!(tree.cost() <= Weight::from_units(16));
        assert!(tree.cost() >= Weight::from_units(12));
    }

    #[test]
    fn chain_collapses_onto_one_path() {
        // Collinear sinks: every sink dominates its predecessors; the whole
        // net is one straight path.
        let grid = GridGraph::new(1, 6, Weight::UNIT).unwrap();
        let net = Net::new(
            grid.node_at(0, 0).unwrap(),
            vec![
                grid.node_at(0, 2).unwrap(),
                grid.node_at(0, 4).unwrap(),
                grid.node_at(0, 5).unwrap(),
            ],
        )
        .unwrap();
        let tree = Dom::new().construct(grid.graph(), &net).unwrap();
        assert_eq!(tree.cost(), Weight::from_units(5));
        assert!(tree.is_shortest_paths_tree(grid.graph(), &net).unwrap());
    }

    #[test]
    fn cheap_cost_matches_built_tree_on_chains() {
        let grid = GridGraph::new(1, 6, Weight::UNIT).unwrap();
        let terminals = [
            grid.node_at(0, 0).unwrap(),
            grid.node_at(0, 3).unwrap(),
            grid.node_at(0, 5).unwrap(),
        ];
        let td = TerminalDistances::compute(grid.graph(), &terminals).unwrap();
        let cheap = Dom::new().cost_with(grid.graph(), &td, None).unwrap();
        let built = Dom::new().build_with(grid.graph(), &td, None).unwrap();
        assert_eq!(cheap, Weight::from_units(5));
        assert_eq!(built.cost(), Weight::from_units(5));
    }

    #[test]
    fn cheap_cost_upper_bounds_built_tree() {
        
        let mut rng = route_graph::rng::SplitMix64::seed_from_u64(17);
        let grid = GridGraph::new(7, 7, Weight::UNIT).unwrap();
        for _ in 0..10 {
            let pins = route_graph::random::random_net(grid.graph(), 5, &mut rng).unwrap();
            let td = TerminalDistances::compute(grid.graph(), &pins).unwrap();
            let cheap = Dom::new().cost_with(grid.graph(), &td, None).unwrap();
            let built = Dom::new().build_with(grid.graph(), &td, None).unwrap();
            assert!(built.cost() <= cheap, "sharing can only help");
        }
    }

    #[test]
    fn dom_beats_djka_or_ties_on_grids() {
        use crate::Djka;
        
        let mut rng = route_graph::rng::SplitMix64::seed_from_u64(18);
        let grid = GridGraph::new(8, 8, Weight::UNIT).unwrap();
        let mut dom_total = Weight::ZERO;
        let mut djka_total = Weight::ZERO;
        for _ in 0..20 {
            let pins = route_graph::random::random_net(grid.graph(), 6, &mut rng).unwrap();
            let net = Net::from_terminals(pins).unwrap();
            let dom = Dom::new().construct(grid.graph(), &net).unwrap();
            let djka = Djka::new().construct(grid.graph(), &net).unwrap();
            assert!(dom.is_shortest_paths_tree(grid.graph(), &net).unwrap());
            dom_total += dom.cost();
            djka_total += djka.cost();
        }
        // Table 1 ranking: DOM uses less wire than DJKA on average.
        assert!(dom_total <= djka_total);
    }

    #[test]
    fn zero_weight_dominance_cycles_are_broken() {
        // Two sinks joined by a zero-weight edge, both at distance 2 from
        // the source: each dominates the other; the lexicographic tie-break
        // must still deliver a connected arborescence.
        let mut g = Graph::with_nodes(4);
        let n: Vec<NodeId> = g.node_ids().collect();
        g.add_edge(n[0], n[1], Weight::from_units(2)).unwrap();
        g.add_edge(n[1], n[2], Weight::ZERO).unwrap();
        g.add_edge(n[1], n[3], Weight::ZERO).unwrap();
        g.add_edge(n[2], n[3], Weight::ZERO).unwrap();
        let net = Net::new(n[0], vec![n[2], n[3]]).unwrap();
        let tree = Dom::new().construct(&g, &net).unwrap();
        assert!(tree.spans(&net));
        assert!(tree.is_shortest_paths_tree(&g, &net).unwrap());
        assert_eq!(tree.cost(), Weight::from_units(2));
    }

    #[test]
    fn disconnected_sink_errors() {
        let mut g = Graph::with_nodes(3);
        let n: Vec<NodeId> = g.node_ids().collect();
        g.add_edge(n[0], n[1], Weight::UNIT).unwrap();
        let net = Net::new(n[0], vec![n[1], n[2]]).unwrap();
        assert!(matches!(
            Dom::new().construct(&g, &net),
            Err(SteinerError::Graph(GraphError::Disconnected { .. }))
        ));
    }
}
