//! Nets: the pin sets to be electrically connected.

use route_graph::{GraphView, NodeId};

use crate::SteinerError;

/// A net `N = {n0, n1, …, nk}`: a signal source plus one or more sinks
/// (paper §2).
///
/// The source is distinguished because the arborescence constructions (PFA,
/// IDOM, DOM, DJKA) must deliver a *shortest* path from it to every sink;
/// the Steiner constructions (KMB, ZEL, IGMST) ignore the distinction.
///
/// # Example
///
/// ```
/// use route_graph::NodeId;
/// use steiner_route::Net;
///
/// # fn main() -> Result<(), steiner_route::SteinerError> {
/// let net = Net::new(
///     NodeId::from_index(0),
///     vec![NodeId::from_index(3), NodeId::from_index(7)],
/// )?;
/// assert_eq!(net.pin_count(), 3);
/// assert_eq!(net.terminals()[0], net.source());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net {
    /// `terminals[0]` is the source; the rest are sinks.
    terminals: Vec<NodeId>,
}

impl Net {
    /// Creates a net from a source and its sinks.
    ///
    /// # Errors
    ///
    /// Returns [`SteinerError::EmptyNet`] if `sinks` is empty and
    /// [`SteinerError::DuplicatePin`] if any pin repeats (including a sink
    /// equal to the source).
    pub fn new(source: NodeId, sinks: Vec<NodeId>) -> Result<Net, SteinerError> {
        let mut terminals = Vec::with_capacity(sinks.len() + 1);
        terminals.push(source);
        terminals.extend(sinks);
        Net::from_terminals(terminals)
    }

    /// Creates a net from a terminal list whose first element is the source.
    ///
    /// # Errors
    ///
    /// Returns [`SteinerError::EmptyNet`] for fewer than two terminals and
    /// [`SteinerError::DuplicatePin`] for repeats.
    pub fn from_terminals(terminals: Vec<NodeId>) -> Result<Net, SteinerError> {
        if terminals.len() < 2 {
            return Err(SteinerError::EmptyNet);
        }
        for (i, &t) in terminals.iter().enumerate() {
            if terminals[..i].contains(&t) {
                return Err(SteinerError::DuplicatePin(t));
            }
        }
        Ok(Net { terminals })
    }

    /// The signal source `n0`.
    #[must_use]
    pub fn source(&self) -> NodeId {
        self.terminals[0]
    }

    /// The sinks `n1 … nk`.
    #[must_use]
    pub fn sinks(&self) -> &[NodeId] {
        &self.terminals[1..]
    }

    /// All terminals, source first.
    #[must_use]
    pub fn terminals(&self) -> &[NodeId] {
        &self.terminals
    }

    /// Total number of pins (source + sinks).
    #[must_use]
    pub fn pin_count(&self) -> usize {
        self.terminals.len()
    }

    /// Returns `true` if `v` is one of this net's pins.
    #[must_use]
    pub fn contains(&self, v: NodeId) -> bool {
        self.terminals.contains(&v)
    }

    /// Checks that every pin is a live node of `g`.
    ///
    /// # Errors
    ///
    /// Propagates the node-validity error of the first offending pin.
    pub fn validate_in<G: GraphView>(&self, g: &G) -> Result<(), SteinerError> {
        for &t in &self.terminals {
            g.require_live_node(t)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use route_graph::{Graph, Weight};

    fn node(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn construction_orders_source_first() {
        let net = Net::new(node(5), vec![node(1), node(2)]).unwrap();
        assert_eq!(net.source(), node(5));
        assert_eq!(net.sinks(), &[node(1), node(2)]);
        assert_eq!(net.terminals(), &[node(5), node(1), node(2)]);
        assert_eq!(net.pin_count(), 3);
    }

    #[test]
    fn rejects_duplicates() {
        assert_eq!(
            Net::new(node(1), vec![node(1)]).unwrap_err(),
            SteinerError::DuplicatePin(node(1))
        );
        assert_eq!(
            Net::new(node(0), vec![node(2), node(2)]).unwrap_err(),
            SteinerError::DuplicatePin(node(2))
        );
    }

    #[test]
    fn rejects_sourceless_or_sinkless() {
        assert_eq!(Net::new(node(0), vec![]).unwrap_err(), SteinerError::EmptyNet);
        assert_eq!(
            Net::from_terminals(vec![node(0)]).unwrap_err(),
            SteinerError::EmptyNet
        );
        assert_eq!(
            Net::from_terminals(vec![]).unwrap_err(),
            SteinerError::EmptyNet
        );
    }

    #[test]
    fn contains_checks_membership() {
        let net = Net::new(node(0), vec![node(4)]).unwrap();
        assert!(net.contains(node(0)));
        assert!(net.contains(node(4)));
        assert!(!net.contains(node(1)));
    }

    #[test]
    fn validate_in_flags_dead_pins() {
        let mut g = Graph::with_nodes(3);
        let ids: Vec<NodeId> = g.node_ids().collect();
        g.add_edge(ids[0], ids[1], Weight::UNIT).unwrap();
        let net = Net::new(ids[0], vec![ids[2]]).unwrap();
        assert!(net.validate_in(&g).is_ok());
        g.remove_node(ids[2]).unwrap();
        assert!(net.validate_in(&g).is_err());
    }
}
