//! Routing trees: validated tree subgraphs spanning a net.

use std::collections::HashMap;

use route_graph::{EdgeId, GraphView, NodeId, ShortestPaths, Weight};

use crate::{Net, SteinerError};

/// A routing solution for a net: a tree `T ⊆ G` (paper §2).
///
/// A `RoutingTree` is constructed from an edge set and *validated*: the
/// edges must be usable in the graph, acyclic, and form a single connected
/// component. The tree snapshots its cost (sum of edge weights) at
/// construction time; if graph weights are later mutated the snapshot is not
/// updated.
///
/// # Example
///
/// ```
/// use route_graph::{Graph, Weight};
/// use steiner_route::{Net, RoutingTree};
///
/// # fn main() -> Result<(), steiner_route::SteinerError> {
/// let mut g = Graph::with_nodes(3);
/// let n: Vec<_> = g.node_ids().collect();
/// let e0 = g.add_edge(n[0], n[1], Weight::from_units(2))?;
/// let e1 = g.add_edge(n[1], n[2], Weight::from_units(3))?;
/// let tree = RoutingTree::from_edges(&g, vec![e0, e1])?;
/// let net = Net::new(n[0], vec![n[2]])?;
/// assert!(tree.spans(&net));
/// assert_eq!(tree.cost(), Weight::from_units(5));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutingTree {
    edges: Vec<EdgeId>,
    cost: Weight,
    adjacency: HashMap<NodeId, Vec<(NodeId, EdgeId, Weight)>>,
}

impl RoutingTree {
    /// Builds and validates a tree from an edge set.
    ///
    /// Duplicate edge ids are collapsed to a single occurrence.
    ///
    /// # Errors
    ///
    /// * [`SteinerError::Graph`] if an edge is unusable (removed or with a
    ///   removed endpoint),
    /// * [`SteinerError::CycleInTree`] if the edges contain a cycle,
    /// * [`SteinerError::ForestNotTree`] if the edges span more than one
    ///   connected component.
    pub fn from_edges<G: GraphView>(g: &G, edges: Vec<EdgeId>) -> Result<RoutingTree, SteinerError> {
        let mut dedup: Vec<EdgeId> = Vec::with_capacity(edges.len());
        let mut seen = HashMap::new();
        for e in edges {
            if seen.insert(e, ()).is_none() {
                dedup.push(e);
            }
        }
        let mut adjacency: HashMap<NodeId, Vec<(NodeId, EdgeId, Weight)>> = HashMap::new();
        let mut cost = Weight::ZERO;
        let mut index_of: HashMap<NodeId, usize> = HashMap::new();
        for &e in &dedup {
            if !g.is_edge_usable(e) {
                return Err(SteinerError::Graph(route_graph::GraphError::EdgeRemoved(e)));
            }
            let (a, b) = g.endpoints(e)?;
            let w = g.weight(e)?;
            cost = cost.saturating_add(w);
            adjacency.entry(a).or_default().push((b, e, w));
            adjacency.entry(b).or_default().push((a, e, w));
            let next = index_of.len();
            index_of.entry(a).or_insert(next);
            let next = index_of.len();
            index_of.entry(b).or_insert(next);
        }
        // Acyclicity + connectivity via union-find over touched nodes.
        let mut uf = route_graph::dsu::UnionFind::new(index_of.len());
        for &e in &dedup {
            let (a, b) = g.endpoints(e)?;
            if !uf.union(index_of[&a], index_of[&b]) {
                return Err(SteinerError::CycleInTree);
            }
        }
        if uf.set_count() > 1 {
            return Err(SteinerError::ForestNotTree);
        }
        Ok(RoutingTree {
            edges: dedup,
            cost,
            adjacency,
        })
    }

    /// The tree's edges.
    #[must_use]
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Number of edges.
    #[must_use]
    pub fn edge_len(&self) -> usize {
        self.edges.len()
    }

    /// Total wirelength: the sum of edge weights at construction time
    /// (`cost(T)` in the paper).
    #[must_use]
    pub fn cost(&self) -> Weight {
        self.cost
    }

    /// Iterates over the nodes touched by the tree.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.adjacency.keys().copied()
    }

    /// Number of nodes touched by the tree.
    #[must_use]
    pub fn node_len(&self) -> usize {
        self.adjacency.len()
    }

    /// Returns `true` if `v` is a node of the tree.
    #[must_use]
    pub fn contains_node(&self, v: NodeId) -> bool {
        self.adjacency.contains_key(&v)
    }

    /// Degree of `v` within the tree (0 if absent).
    #[must_use]
    pub fn degree(&self, v: NodeId) -> usize {
        self.adjacency.get(&v).map_or(0, Vec::len)
    }

    /// Returns `true` if the tree contains every pin of `net`.
    #[must_use]
    pub fn spans(&self, net: &Net) -> bool {
        net.terminals().iter().all(|&t| self.contains_node(t))
    }

    /// Within-tree path cost from `from` to `to`, or `None` if either node
    /// is not in the tree.
    #[must_use]
    pub fn path_cost(&self, from: NodeId, to: NodeId) -> Option<Weight> {
        self.distances_from(from)?.get(&to).copied()
    }

    /// Within-tree distances from `root` to every tree node, or `None` if
    /// `root` is not in the tree.
    #[must_use]
    pub fn distances_from(&self, root: NodeId) -> Option<HashMap<NodeId, Weight>> {
        if !self.contains_node(root) {
            return None;
        }
        let mut dist = HashMap::with_capacity(self.adjacency.len());
        dist.insert(root, Weight::ZERO);
        let mut stack = vec![root];
        while let Some(v) = stack.pop() {
            let dv = dist[&v];
            for &(u, _, w) in &self.adjacency[&v] {
                if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(u) {
                    e.insert(dv.saturating_add(w));
                    stack.push(u);
                }
            }
        }
        Some(dist)
    }

    /// The maximum source-to-sink pathlength inside the tree.
    ///
    /// # Errors
    ///
    /// Returns [`SteinerError::MissingTerminal`] if the tree does not span
    /// the net.
    pub fn max_pathlength(&self, net: &Net) -> Result<Weight, SteinerError> {
        let dist = self
            .distances_from(net.source())
            .ok_or(SteinerError::MissingTerminal(net.source()))?;
        let mut max = Weight::ZERO;
        for &s in net.sinks() {
            let d = *dist.get(&s).ok_or(SteinerError::MissingTerminal(s))?;
            max = max.max(d);
        }
        Ok(max)
    }

    /// Checks the arborescence property of the GSA problem (paper §2):
    /// `minpath_T(n0, ni) == minpath_G(n0, ni)` for every sink.
    ///
    /// # Errors
    ///
    /// Returns [`SteinerError::MissingTerminal`] if the tree does not span
    /// the net, or a graph error if a sink is unreachable in `g`.
    pub fn is_shortest_paths_tree<G: GraphView>(
        &self,
        g: &G,
        net: &Net,
    ) -> Result<bool, SteinerError> {
        let tree_dist = self
            .distances_from(net.source())
            .ok_or(SteinerError::MissingTerminal(net.source()))?;
        let sp = ShortestPaths::run_to_targets(g, net.source(), net.sinks())?;
        for &s in net.sinks() {
            let in_tree = *tree_dist.get(&s).ok_or(SteinerError::MissingTerminal(s))?;
            let in_graph = sp.dist(s).ok_or(route_graph::GraphError::Disconnected {
                from: net.source(),
                to: s,
            })?;
            if in_tree != in_graph {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Returns a copy of the tree with all pendant (degree-1) nodes not in
    /// `keep` iteratively deleted — the final cleanup step of KMB and of the
    /// arborescence expansions.
    ///
    /// # Errors
    ///
    /// Propagates reconstruction errors (cannot occur for a valid tree).
    pub fn pruned_to<G: GraphView>(&self, g: &G, keep: &[NodeId]) -> Result<RoutingTree, SteinerError> {
        let mut degree: HashMap<NodeId, usize> = self
            .adjacency
            .iter()
            .map(|(&v, adj)| (v, adj.len()))
            .collect();
        let mut removed_edges: HashMap<EdgeId, bool> = HashMap::new();
        let mut queue: Vec<NodeId> = degree
            .iter()
            .filter(|&(v, &d)| d == 1 && !keep.contains(v))
            .map(|(&v, _)| v)
            .collect();
        let mut dead_nodes: HashMap<NodeId, bool> = HashMap::new();
        while let Some(v) = queue.pop() {
            if dead_nodes.contains_key(&v) || degree.get(&v) != Some(&1) || keep.contains(&v) {
                continue;
            }
            dead_nodes.insert(v, true);
            // Find the single live incident edge.
            for &(u, e, _) in &self.adjacency[&v] {
                if removed_edges.contains_key(&e) || dead_nodes.contains_key(&u) {
                    continue;
                }
                removed_edges.insert(e, true);
                let du = degree.get_mut(&u).expect("neighbor tracked");
                *du -= 1;
                if *du == 1 && !keep.contains(&u) {
                    queue.push(u);
                }
                break;
            }
        }
        let kept: Vec<EdgeId> = self
            .edges
            .iter()
            .copied()
            .filter(|e| !removed_edges.contains_key(e))
            .collect();
        RoutingTree::from_edges(g, kept)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use route_graph::GridGraph;

    fn grid3() -> GridGraph {
        GridGraph::new(3, 3, Weight::UNIT).unwrap()
    }

    /// Builds the L-shaped tree (0,0)-(0,1)-(0,2)-(1,2) on a 3×3 grid.
    fn l_tree(grid: &GridGraph) -> (RoutingTree, Vec<NodeId>) {
        let n00 = grid.node_at(0, 0).unwrap();
        let n01 = grid.node_at(0, 1).unwrap();
        let n02 = grid.node_at(0, 2).unwrap();
        let n12 = grid.node_at(1, 2).unwrap();
        let edges = vec![
            grid.edge_between(n00, n01).unwrap(),
            grid.edge_between(n01, n02).unwrap(),
            grid.edge_between(n02, n12).unwrap(),
        ];
        let tree = RoutingTree::from_edges(grid.graph(), edges).unwrap();
        (tree, vec![n00, n01, n02, n12])
    }

    #[test]
    fn construction_and_cost() {
        let grid = grid3();
        let (tree, nodes) = l_tree(&grid);
        assert_eq!(tree.cost(), Weight::from_units(3));
        assert_eq!(tree.edge_len(), 3);
        assert_eq!(tree.node_len(), 4);
        for &v in &nodes {
            assert!(tree.contains_node(v));
        }
    }

    #[test]
    fn duplicate_edges_collapse() {
        let grid = grid3();
        let a = grid.node_at(0, 0).unwrap();
        let b = grid.node_at(0, 1).unwrap();
        let e = grid.edge_between(a, b).unwrap();
        let tree = RoutingTree::from_edges(grid.graph(), vec![e, e, e]).unwrap();
        assert_eq!(tree.edge_len(), 1);
        assert_eq!(tree.cost(), Weight::UNIT);
    }

    #[test]
    fn cycles_rejected() {
        let grid = grid3();
        let n00 = grid.node_at(0, 0).unwrap();
        let n01 = grid.node_at(0, 1).unwrap();
        let n10 = grid.node_at(1, 0).unwrap();
        let n11 = grid.node_at(1, 1).unwrap();
        let edges = vec![
            grid.edge_between(n00, n01).unwrap(),
            grid.edge_between(n01, n11).unwrap(),
            grid.edge_between(n11, n10).unwrap(),
            grid.edge_between(n10, n00).unwrap(),
        ];
        assert_eq!(
            RoutingTree::from_edges(grid.graph(), edges).unwrap_err(),
            SteinerError::CycleInTree
        );
    }

    #[test]
    fn forests_rejected() {
        let grid = grid3();
        let e1 = grid
            .edge_between(grid.node_at(0, 0).unwrap(), grid.node_at(0, 1).unwrap())
            .unwrap();
        let e2 = grid
            .edge_between(grid.node_at(2, 0).unwrap(), grid.node_at(2, 1).unwrap())
            .unwrap();
        assert_eq!(
            RoutingTree::from_edges(grid.graph(), vec![e1, e2]).unwrap_err(),
            SteinerError::ForestNotTree
        );
    }

    #[test]
    fn unusable_edges_rejected() {
        let mut grid = grid3();
        let a = grid.node_at(0, 0).unwrap();
        let b = grid.node_at(0, 1).unwrap();
        let e = grid.edge_between(a, b).unwrap();
        grid.graph_mut().remove_edge(e).unwrap();
        assert!(matches!(
            RoutingTree::from_edges(grid.graph(), vec![e]),
            Err(SteinerError::Graph(_))
        ));
    }

    #[test]
    fn spans_and_pathlengths() {
        let grid = grid3();
        let (tree, nodes) = l_tree(&grid);
        let net = Net::new(nodes[0], vec![nodes[3]]).unwrap();
        assert!(tree.spans(&net));
        assert_eq!(tree.max_pathlength(&net).unwrap(), Weight::from_units(3));
        assert_eq!(
            tree.path_cost(nodes[0], nodes[2]),
            Some(Weight::from_units(2))
        );
        assert_eq!(tree.path_cost(nodes[0], grid.node_at(2, 2).unwrap()), None);
    }

    #[test]
    fn missing_terminal_detected() {
        let grid = grid3();
        let (tree, nodes) = l_tree(&grid);
        let outside = grid.node_at(2, 2).unwrap();
        let net = Net::new(nodes[0], vec![outside]).unwrap();
        assert!(!tree.spans(&net));
        assert_eq!(
            tree.max_pathlength(&net).unwrap_err(),
            SteinerError::MissingTerminal(outside)
        );
    }

    #[test]
    fn arborescence_check() {
        let grid = grid3();
        let (tree, nodes) = l_tree(&grid);
        // Path (0,0)→(1,2) in tree has length 3, equal to Manhattan — an SPT.
        let net = Net::new(nodes[0], vec![nodes[3]]).unwrap();
        assert!(tree.is_shortest_paths_tree(grid.graph(), &net).unwrap());
        // From the corner (0,2) to (0,0): tree path 2 = optimal too.
        let net2 = Net::new(nodes[2], vec![nodes[0]]).unwrap();
        assert!(tree.is_shortest_paths_tree(grid.graph(), &net2).unwrap());
        // Sink (1,2) from source (0,1): tree path 0,1→0,2→1,2 length 2 = optimal.
        let net3 = Net::new(nodes[1], vec![nodes[3]]).unwrap();
        assert!(tree.is_shortest_paths_tree(grid.graph(), &net3).unwrap());
    }

    #[test]
    fn non_spt_detected() {
        // U-shaped detour: (0,0)-(1,0)-(2,0)-(2,1)-(2,2)-(1,2)-(0,2); source
        // (0,0), sink (0,2) has tree distance 6 but graph distance 2.
        let grid = grid3();
        let path = [(0, 0), (1, 0), (2, 0), (2, 1), (2, 2), (1, 2), (0, 2)];
        let mut edges = Vec::new();
        for w in path.windows(2) {
            let a = grid.node_at(w[0].0, w[0].1).unwrap();
            let b = grid.node_at(w[1].0, w[1].1).unwrap();
            edges.push(grid.edge_between(a, b).unwrap());
        }
        let tree = RoutingTree::from_edges(grid.graph(), edges).unwrap();
        let net = Net::new(
            grid.node_at(0, 0).unwrap(),
            vec![grid.node_at(0, 2).unwrap()],
        )
        .unwrap();
        assert!(!tree.is_shortest_paths_tree(grid.graph(), &net).unwrap());
    }

    #[test]
    fn pruning_removes_dangling_branches() {
        let grid = grid3();
        let n00 = grid.node_at(0, 0).unwrap();
        let n01 = grid.node_at(0, 1).unwrap();
        let n02 = grid.node_at(0, 2).unwrap();
        let n11 = grid.node_at(1, 1).unwrap();
        let n21 = grid.node_at(2, 1).unwrap();
        let edges = vec![
            grid.edge_between(n00, n01).unwrap(),
            grid.edge_between(n01, n02).unwrap(),
            // dangling branch below n01
            grid.edge_between(n01, n11).unwrap(),
            grid.edge_between(n11, n21).unwrap(),
        ];
        let tree = RoutingTree::from_edges(grid.graph(), edges).unwrap();
        let pruned = tree.pruned_to(grid.graph(), &[n00, n02]).unwrap();
        assert_eq!(pruned.edge_len(), 2);
        assert_eq!(pruned.cost(), Weight::from_units(2));
        assert!(!pruned.contains_node(n21));
        assert!(!pruned.contains_node(n11));
    }

    #[test]
    fn pruning_keeps_protected_leaves() {
        let grid = grid3();
        let (tree, nodes) = l_tree(&grid);
        let pruned = tree.pruned_to(grid.graph(), &nodes).unwrap();
        assert_eq!(pruned.edge_len(), 3);
    }

    #[test]
    fn empty_tree_is_valid_but_spans_nothing() {
        let grid = grid3();
        let tree = RoutingTree::from_edges(grid.graph(), vec![]).unwrap();
        assert_eq!(tree.cost(), Weight::ZERO);
        assert_eq!(tree.node_len(), 0);
        let net = Net::new(
            grid.node_at(0, 0).unwrap(),
            vec![grid.node_at(1, 1).unwrap()],
        )
        .unwrap();
        assert!(!tree.spans(&net));
    }
}
