//! Mehlhorn's fast variant of the KMB heuristic.
//!
//! The paper's Appendix notes that KMB's `O(|N|·|V|²)` time "can be reduced
//! to `O(|E| + |V| log |V|)` using an alternative implementation \[30\]"
//! (Mehlhorn, IPL 1988). Instead of one Dijkstra per terminal, a single
//! *multi-source* Dijkstra partitions the graph into terminal Voronoi
//! regions; every edge bridging two regions induces a candidate
//! distance-graph edge `d(u) + w(u,v) + d(v)`, and the MST over those
//! candidates expands to a Steiner tree with the same `2·(1 − 1/L)` bound.

use route_graph::dsu::UnionFind;
use route_graph::heap::IndexedBinaryHeap;
use route_graph::mst::kruskal_subgraph;
use route_graph::{EdgeId, Graph, GraphError, NodeId, Weight};

use crate::heuristic::{HeuristicInfo, SteinerHeuristic};
use crate::{Net, RoutingTree, SteinerError};

/// Mehlhorn's single-Dijkstra KMB (paper Appendix, reference \[30\]).
///
/// Produces trees with the same performance bound as [`Kmb`](crate::Kmb)
/// — and usually the same cost — at a fraction of the preprocessing work,
/// which matters on chip-scale routing graphs.
///
/// # Example
///
/// ```
/// use route_graph::{GridGraph, Weight};
/// use steiner_route::{MehlhornKmb, Net, SteinerHeuristic};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let grid = GridGraph::new(5, 5, Weight::UNIT)?;
/// let net = Net::new(
///     grid.node_at(0, 0)?,
///     vec![grid.node_at(4, 0)?, grid.node_at(0, 4)?],
/// )?;
/// let tree = MehlhornKmb::new().construct(grid.graph(), &net)?;
/// assert!(tree.spans(&net));
/// assert_eq!(tree.cost(), Weight::from_units(8));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MehlhornKmb;

impl MehlhornKmb {
    /// Creates the heuristic.
    #[must_use]
    pub fn new() -> MehlhornKmb {
        MehlhornKmb
    }
}

/// Voronoi partition of the live graph around a terminal set.
#[derive(Debug)]
struct Voronoi {
    /// Nearest terminal index per node.
    owner: Vec<Option<usize>>,
    /// Distance to the nearest terminal per node.
    dist: Vec<Option<Weight>>,
    /// Parent (towards the owning terminal) per node.
    parent: Vec<Option<(NodeId, EdgeId)>>,
}

impl Voronoi {
    fn compute(g: &Graph, terminals: &[NodeId]) -> Voronoi {
        let n = g.node_count();
        let mut owner: Vec<Option<usize>> = vec![None; n];
        let mut dist: Vec<Option<Weight>> = vec![None; n];
        let mut parent: Vec<Option<(NodeId, EdgeId)>> = vec![None; n];
        let mut pending_owner: Vec<Option<usize>> = vec![None; n];
        let mut heap = IndexedBinaryHeap::new(n);
        for (i, &t) in terminals.iter().enumerate() {
            heap.push(t.index(), Weight::ZERO);
            pending_owner[t.index()] = Some(i);
        }
        while let Some((vi, d)) = heap.pop() {
            dist[vi] = Some(d);
            owner[vi] = pending_owner[vi];
            for (u, e, w) in g.neighbors(NodeId::from_index(vi)) {
                if dist[u.index()].is_some() {
                    continue;
                }
                let nd = d.saturating_add(w);
                if heap.push(u.index(), nd) {
                    pending_owner[u.index()] = owner[vi];
                    parent[u.index()] = Some((NodeId::from_index(vi), e));
                }
            }
        }
        Voronoi {
            owner,
            dist,
            parent,
        }
    }

    /// Edges of the walk from `v` up to its owning terminal.
    fn chain_to_terminal(&self, mut v: NodeId) -> Vec<EdgeId> {
        let mut edges = Vec::new();
        while let Some((p, e)) = self.parent[v.index()] {
            edges.push(e);
            v = p;
        }
        edges
    }
}

impl HeuristicInfo for MehlhornKmb {
    fn name(&self) -> &str {
        "KMB-M"
    }
}

impl SteinerHeuristic for MehlhornKmb {
    fn construct(&self, g: &Graph, net: &Net) -> Result<RoutingTree, SteinerError> {
        net.validate_in(g)?;
        let terminals = net.terminals();
        let k = terminals.len();
        let voronoi = Voronoi::compute(g, terminals);
        // Candidate distance-graph edges: one minimal bridge per terminal
        // pair, discovered from region-crossing graph edges.
        let mut bridges: Vec<(Weight, usize, usize, NodeId, EdgeId, NodeId)> = Vec::new();
        for e in g.edge_ids() {
            let (a, b) = g.endpoints(e)?;
            let (Some(oa), Some(ob)) = (voronoi.owner[a.index()], voronoi.owner[b.index()])
            else {
                continue;
            };
            if oa == ob {
                continue;
            }
            let w = voronoi.dist[a.index()]
                .expect("owned nodes have distances")
                .saturating_add(g.weight(e)?)
                .saturating_add(voronoi.dist[b.index()].expect("owned nodes have distances"));
            bridges.push((w, oa.min(ob), oa.max(ob), a, e, b));
        }
        // Kruskal over the candidate edges gives MST(G') directly.
        bridges.sort();
        let mut uf = UnionFind::new(k);
        let mut expansion: Vec<EdgeId> = Vec::new();
        for (_, oa, ob, a, e, b) in bridges {
            if !uf.union(oa, ob) {
                continue;
            }
            expansion.push(e);
            expansion.extend(voronoi.chain_to_terminal(a));
            expansion.extend(voronoi.chain_to_terminal(b));
        }
        if uf.set_count() > 1 {
            // Find a representative unreachable pair for the error.
            let root0 = uf.find(0);
            let other = (1..k)
                .find(|&i| uf.find(i) != root0)
                .expect("more than one set implies a second component");
            return Err(SteinerError::Graph(GraphError::Disconnected {
                from: terminals[0],
                to: terminals[other],
            }));
        }
        // Final cleanup exactly as KMB: MST of the expansion, prune.
        let sub = kruskal_subgraph(g, &expansion);
        let tree = RoutingTree::from_edges(g, sub.edges)?;
        tree.pruned_to(g, terminals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{exact, Kmb};
    use route_graph::GridGraph;

    #[test]
    fn two_pin_nets_are_shortest_paths() {
        let grid = GridGraph::new(6, 6, Weight::UNIT).unwrap();
        let net = Net::new(
            grid.node_at(0, 0).unwrap(),
            vec![grid.node_at(5, 3).unwrap()],
        )
        .unwrap();
        let tree = MehlhornKmb::new().construct(grid.graph(), &net).unwrap();
        assert_eq!(tree.cost(), Weight::from_units(8));
    }

    #[test]
    fn cost_is_competitive_with_classic_kmb() {
        
        let mut rng = route_graph::rng::SplitMix64::seed_from_u64(71);
        let grid = GridGraph::new(9, 9, Weight::UNIT).unwrap();
        let mut fast_total = 0u64;
        let mut classic_total = 0u64;
        for _ in 0..15 {
            let pins = route_graph::random::random_net(grid.graph(), 6, &mut rng).unwrap();
            let net = Net::from_terminals(pins).unwrap();
            let fast = MehlhornKmb::new().construct(grid.graph(), &net).unwrap();
            let classic = Kmb::new().construct(grid.graph(), &net).unwrap();
            assert!(fast.spans(&net));
            fast_total += fast.cost().as_milli();
            classic_total += classic.cost().as_milli();
        }
        // Within 10% of classic KMB in aggregate (usually identical).
        let ratio = fast_total as f64 / classic_total as f64;
        assert!((0.9..=1.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn respects_the_two_approximation_bound() {
        
        let mut rng = route_graph::rng::SplitMix64::seed_from_u64(72);
        for _ in 0..8 {
            let g =
                route_graph::random::random_connected_graph(15, 30, 1..8, &mut rng).unwrap();
            let pins = route_graph::random::random_net(&g, 4, &mut rng).unwrap();
            let net = Net::from_terminals(pins).unwrap();
            let tree = MehlhornKmb::new().construct(&g, &net).unwrap();
            let opt = exact::steiner_cost_for_net(&g, &net).unwrap();
            assert!(tree.cost() >= opt);
            assert!(tree.cost().as_milli() <= 2 * opt.as_milli());
        }
    }

    #[test]
    fn disconnected_terminals_error() {
        let mut g = Graph::with_nodes(4);
        let n: Vec<NodeId> = g.node_ids().collect();
        g.add_edge(n[0], n[1], Weight::UNIT).unwrap();
        g.add_edge(n[2], n[3], Weight::UNIT).unwrap();
        let net = Net::new(n[0], vec![n[1], n[3]]).unwrap();
        assert!(matches!(
            MehlhornKmb::new().construct(&g, &net),
            Err(SteinerError::Graph(GraphError::Disconnected { .. }))
        ));
    }

    #[test]
    fn works_on_congested_weights() {
        
        let mut rng = route_graph::rng::SplitMix64::seed_from_u64(73);
        let mut grid = crate::congestion::table1_grid(
            crate::congestion::CongestionLevel::Medium,
            &mut rng,
        )
        .unwrap();
        let pins = route_graph::random::random_net(grid.graph(), 5, &mut rng).unwrap();
        let net = Net::from_terminals(pins).unwrap();
        let tree = MehlhornKmb::new()
            .construct(grid.graph_mut(), &net)
            .unwrap();
        assert!(tree.spans(&net));
    }
}
