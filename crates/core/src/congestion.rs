//! The congestion workload model of the paper's Table 1 experiments.
//!
//! "Congestion was modeled as follows: starting with a grid graph having
//! unit weights (w = 1.00) on all edges, k uniformly-distributed nets (2–5
//! pins each) were routed using KMB. As each net was routed, the weights of
//! the corresponding graph edges were incremented, thus raising the average
//! routing-graph edge weight to w̄ > 1.00." Three levels: none (k = 0,
//! w̄ = 1.00), low (k = 10, w̄ ≈ 1.28), medium (k = 20, w̄ ≈ 1.55).

use route_graph::rng::Rng;

use route_graph::{GridGraph, Weight};

use crate::heuristic::SteinerHeuristic;
use crate::{Kmb, Net, SteinerError};

/// The three congestion levels of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CongestionLevel {
    /// `k = 0` pre-routed nets, `w̄ = 1.00`.
    None,
    /// `k = 10` pre-routed nets, `w̄ ≈ 1.28` on a 20×20 grid.
    Low,
    /// `k = 20` pre-routed nets, `w̄ ≈ 1.55` on a 20×20 grid.
    Medium,
}

impl CongestionLevel {
    /// Number of pre-routed congesting nets at this level.
    #[must_use]
    pub fn preroute_count(self) -> usize {
        match self {
            CongestionLevel::None => 0,
            CongestionLevel::Low => 10,
            CongestionLevel::Medium => 20,
        }
    }

    /// Display label matching the paper's table headings.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CongestionLevel::None => "No Congestion",
            CongestionLevel::Low => "Low Congestion",
            CongestionLevel::Medium => "Medium Congestion",
        }
    }

    /// All three levels in table order.
    #[must_use]
    pub fn all() -> [CongestionLevel; 3] {
        [
            CongestionLevel::None,
            CongestionLevel::Low,
            CongestionLevel::Medium,
        ]
    }
}

/// Routes `k` random 2–5-pin nets on the grid with KMB, incrementing the
/// weight of every edge each routed tree uses by one unit, and returns the
/// resulting mean edge weight `w̄`.
///
/// # Errors
///
/// Propagates construction errors (cannot occur on a connected grid with
/// enough nodes).
pub fn congest_grid<R: Rng>(
    grid: &mut GridGraph,
    k: usize,
    rng: &mut R,
) -> Result<f64, SteinerError> {
    let kmb = Kmb::new();
    for _ in 0..k {
        let pins = rng.gen_range(2..=5usize);
        let terminals = route_graph::random::random_net(grid.graph(), pins, rng)?;
        let net = Net::from_terminals(terminals)?;
        let tree = kmb.construct(grid.graph(), &net)?;
        for &e in tree.edges() {
            grid.graph_mut().add_weight(e, Weight::UNIT)?;
        }
    }
    Ok(grid
        .graph()
        .mean_edge_weight()
        .expect("grids always have edges"))
}

/// Builds a fresh 20×20 unit grid congested to `level`, as used for every
/// net of the Table 1 experiments ("newly-generated for each net").
///
/// # Errors
///
/// Propagates construction errors (cannot occur for these parameters).
pub fn table1_grid<R: Rng>(
    level: CongestionLevel,
    rng: &mut R,
) -> Result<GridGraph, SteinerError> {
    let mut grid =
        GridGraph::new(20, 20, Weight::UNIT).expect("20x20 grid parameters are valid");
    congest_grid(&mut grid, level.preroute_count(), rng)?;
    Ok(grid)
}

#[cfg(test)]
mod tests {
    use super::*;
    

    #[test]
    fn no_congestion_leaves_unit_weights() {
        let mut rng = route_graph::rng::SplitMix64::seed_from_u64(71);
        let grid = table1_grid(CongestionLevel::None, &mut rng).unwrap();
        assert!((grid.graph().mean_edge_weight().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_weight_rises_with_level() {
        let mut rng = route_graph::rng::SplitMix64::seed_from_u64(72);
        let low = table1_grid(CongestionLevel::Low, &mut rng).unwrap();
        let medium = table1_grid(CongestionLevel::Medium, &mut rng).unwrap();
        let w_low = low.graph().mean_edge_weight().unwrap();
        let w_med = medium.graph().mean_edge_weight().unwrap();
        assert!(w_low > 1.0);
        assert!(w_med > w_low);
    }

    #[test]
    fn levels_match_paper_ballpark() {
        // Paper: w̄ ≈ 1.28 at k = 10 and ≈ 1.55 at k = 20 on a 20×20 grid.
        // Averaged over seeds our generator must land in the same regime.
        let mut rng = route_graph::rng::SplitMix64::seed_from_u64(73);
        let mut w_low = 0.0;
        let mut w_med = 0.0;
        let runs = 10;
        for _ in 0..runs {
            w_low += table1_grid(CongestionLevel::Low, &mut rng)
                .unwrap()
                .graph()
                .mean_edge_weight()
                .unwrap();
            w_med += table1_grid(CongestionLevel::Medium, &mut rng)
                .unwrap()
                .graph()
                .mean_edge_weight()
                .unwrap();
        }
        w_low /= runs as f64;
        w_med /= runs as f64;
        assert!((1.1..1.5).contains(&w_low), "w_low = {w_low}");
        assert!((1.3..1.9).contains(&w_med), "w_med = {w_med}");
    }

    #[test]
    fn near_max_weights_saturate_instead_of_panicking() {
        // A grid already at Weight::MAX must absorb further congestion
        // increments by saturating, not by overflowing the u64 milli
        // representation mid-route.
        let mut rng = route_graph::rng::SplitMix64::seed_from_u64(74);
        let mut grid = GridGraph::new(5, 5, Weight::MAX).unwrap();
        let mean = congest_grid(&mut grid, 3, &mut rng).unwrap();
        assert!(mean >= Weight::MAX.as_f64() * 0.99);
        for e in grid.graph().edge_ids() {
            assert_eq!(grid.graph().weight(e).unwrap(), Weight::MAX);
        }
    }

    #[test]
    fn preroute_counts() {
        assert_eq!(CongestionLevel::None.preroute_count(), 0);
        assert_eq!(CongestionLevel::Low.preroute_count(), 10);
        assert_eq!(CongestionLevel::Medium.preroute_count(), 20);
        assert_eq!(CongestionLevel::all().len(), 3);
    }
}
