//! The congestion workload model of the paper's Table 1 experiments.
//!
//! "Congestion was modeled as follows: starting with a grid graph having
//! unit weights (w = 1.00) on all edges, k uniformly-distributed nets (2–5
//! pins each) were routed using KMB. As each net was routed, the weights of
//! the corresponding graph edges were incremented, thus raising the average
//! routing-graph edge weight to w̄ > 1.00." Three levels: none (k = 0,
//! w̄ = 1.00), low (k = 10, w̄ ≈ 1.28), medium (k = 20, w̄ ≈ 1.55).

use route_graph::rng::Rng;

use route_graph::{GridGraph, Weight};

use crate::heuristic::SteinerHeuristic;
use crate::{Kmb, Net, SteinerError};

/// Pricing model for negotiated-congestion (PathFinder-style) routing.
///
/// Each routing-resource node carries two pressures that the single
/// writer folds into the weights of the node's incident edges between
/// iterations:
///
/// * **present cost** — `present_milli · usage`, where `usage` is how
///   many nets occupied the node in the *previous* iteration (capacity
///   is one net per segment node). It prices joining an occupied node,
///   so under-contested nets drift to free resources first.
/// * **history cost** — grows by `history_milli · overuse` every
///   iteration a node ends over capacity and never decays, so
///   persistently contested nodes stay expensive even in iterations
///   where they momentarily clear. This is the term that breaks
///   oscillation and forces convergence.
///
/// Every operation saturates at `Weight::MAX`: pathological milli
/// coefficients or long non-converging runs must degrade to "infinitely
/// expensive", never wrap or panic (the same failure class PR 1 fixed in
/// the rip-up congestion weights).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NegotiatedPricing {
    /// Present-cost coefficient in milli-units per occupying net.
    pub present_milli: u64,
    /// History-cost coefficient in milli-units per unit of overuse per
    /// iteration.
    pub history_milli: u64,
}

impl Default for NegotiatedPricing {
    /// Present cost 2.0 per occupying net, history cost 1.0 per unit of
    /// overuse per iteration.
    fn default() -> NegotiatedPricing {
        NegotiatedPricing {
            present_milli: 2000,
            history_milli: 1000,
        }
    }
}

impl NegotiatedPricing {
    /// Total pressure a node exerts on its incident edges: accumulated
    /// history plus `present_milli · usage`, saturating.
    #[must_use]
    pub fn node_pressure(&self, usage: u32, history: Weight) -> Weight {
        history.saturating_add_scaled(Weight::from_milli(self.present_milli), u64::from(usage))
    }

    /// One iteration's history-cost growth for a node over capacity by
    /// `overuse` nets, saturating.
    #[must_use]
    pub fn history_increment(&self, overuse: u32) -> Weight {
        Weight::from_milli(self.history_milli).scale(u64::from(overuse))
    }

    /// Prices one edge for the next iteration: the pristine base weight
    /// plus **both** endpoint pressures, saturating. Summing (not
    /// taking the max) keeps the price linear in each endpoint's
    /// contribution, which is what lets a net subtract exactly its own
    /// present cost from its previous route before rerouting — the
    /// rip-up-first semantics negotiation needs to converge.
    #[must_use]
    pub fn edge_weight(&self, base: Weight, pressure_a: Weight, pressure_b: Weight) -> Weight {
        base.saturating_add(pressure_a).saturating_add(pressure_b)
    }
}

/// The three congestion levels of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CongestionLevel {
    /// `k = 0` pre-routed nets, `w̄ = 1.00`.
    None,
    /// `k = 10` pre-routed nets, `w̄ ≈ 1.28` on a 20×20 grid.
    Low,
    /// `k = 20` pre-routed nets, `w̄ ≈ 1.55` on a 20×20 grid.
    Medium,
}

impl CongestionLevel {
    /// Number of pre-routed congesting nets at this level.
    #[must_use]
    pub fn preroute_count(self) -> usize {
        match self {
            CongestionLevel::None => 0,
            CongestionLevel::Low => 10,
            CongestionLevel::Medium => 20,
        }
    }

    /// Display label matching the paper's table headings.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CongestionLevel::None => "No Congestion",
            CongestionLevel::Low => "Low Congestion",
            CongestionLevel::Medium => "Medium Congestion",
        }
    }

    /// All three levels in table order.
    #[must_use]
    pub fn all() -> [CongestionLevel; 3] {
        [
            CongestionLevel::None,
            CongestionLevel::Low,
            CongestionLevel::Medium,
        ]
    }
}

/// Routes `k` random 2–5-pin nets on the grid with KMB, incrementing the
/// weight of every edge each routed tree uses by one unit, and returns the
/// resulting mean edge weight `w̄`.
///
/// # Errors
///
/// Propagates construction errors (cannot occur on a connected grid with
/// enough nodes).
pub fn congest_grid<R: Rng>(
    grid: &mut GridGraph,
    k: usize,
    rng: &mut R,
) -> Result<f64, SteinerError> {
    let kmb = Kmb::new();
    for _ in 0..k {
        let pins = rng.gen_range(2..=5usize);
        let terminals = route_graph::random::random_net(grid.graph(), pins, rng)?;
        let net = Net::from_terminals(terminals)?;
        let tree = kmb.construct(grid.graph(), &net)?;
        for &e in tree.edges() {
            grid.graph_mut().add_weight(e, Weight::UNIT)?;
        }
    }
    Ok(grid
        .graph()
        .mean_edge_weight()
        .expect("grids always have edges"))
}

/// Builds a fresh 20×20 unit grid congested to `level`, as used for every
/// net of the Table 1 experiments ("newly-generated for each net").
///
/// # Errors
///
/// Propagates construction errors (cannot occur for these parameters).
pub fn table1_grid<R: Rng>(
    level: CongestionLevel,
    rng: &mut R,
) -> Result<GridGraph, SteinerError> {
    let mut grid =
        GridGraph::new(20, 20, Weight::UNIT).expect("20x20 grid parameters are valid");
    congest_grid(&mut grid, level.preroute_count(), rng)?;
    Ok(grid)
}

#[cfg(test)]
mod tests {
    use super::*;
    

    #[test]
    fn no_congestion_leaves_unit_weights() {
        let mut rng = route_graph::rng::SplitMix64::seed_from_u64(71);
        let grid = table1_grid(CongestionLevel::None, &mut rng).unwrap();
        assert!((grid.graph().mean_edge_weight().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_weight_rises_with_level() {
        let mut rng = route_graph::rng::SplitMix64::seed_from_u64(72);
        let low = table1_grid(CongestionLevel::Low, &mut rng).unwrap();
        let medium = table1_grid(CongestionLevel::Medium, &mut rng).unwrap();
        let w_low = low.graph().mean_edge_weight().unwrap();
        let w_med = medium.graph().mean_edge_weight().unwrap();
        assert!(w_low > 1.0);
        assert!(w_med > w_low);
    }

    #[test]
    fn levels_match_paper_ballpark() {
        // Paper: w̄ ≈ 1.28 at k = 10 and ≈ 1.55 at k = 20 on a 20×20 grid.
        // Averaged over seeds our generator must land in the same regime.
        let mut rng = route_graph::rng::SplitMix64::seed_from_u64(73);
        let mut w_low = 0.0;
        let mut w_med = 0.0;
        let runs = 10;
        for _ in 0..runs {
            w_low += table1_grid(CongestionLevel::Low, &mut rng)
                .unwrap()
                .graph()
                .mean_edge_weight()
                .unwrap();
            w_med += table1_grid(CongestionLevel::Medium, &mut rng)
                .unwrap()
                .graph()
                .mean_edge_weight()
                .unwrap();
        }
        w_low /= runs as f64;
        w_med /= runs as f64;
        assert!((1.1..1.5).contains(&w_low), "w_low = {w_low}");
        assert!((1.3..1.9).contains(&w_med), "w_med = {w_med}");
    }

    #[test]
    fn near_max_weights_saturate_instead_of_panicking() {
        // A grid already at Weight::MAX must absorb further congestion
        // increments by saturating, not by overflowing the u64 milli
        // representation mid-route.
        let mut rng = route_graph::rng::SplitMix64::seed_from_u64(74);
        let mut grid = GridGraph::new(5, 5, Weight::MAX).unwrap();
        let mean = congest_grid(&mut grid, 3, &mut rng).unwrap();
        assert!(mean >= Weight::MAX.as_f64() * 0.99);
        for e in grid.graph().edge_ids() {
            assert_eq!(grid.graph().weight(e).unwrap(), Weight::MAX);
        }
    }

    #[test]
    fn negotiated_pricing_combines_present_and_history() {
        let p = NegotiatedPricing::default();
        // Unused node: pressure is pure history.
        assert_eq!(
            p.node_pressure(0, Weight::from_milli(500)),
            Weight::from_milli(500)
        );
        // Two occupants on top of history 0.5: 0.5 + 2·2.0 = 4.5.
        assert_eq!(
            p.node_pressure(2, Weight::from_milli(500)),
            Weight::from_milli(4500)
        );
        assert_eq!(p.history_increment(0), Weight::ZERO);
        assert_eq!(p.history_increment(3), Weight::from_milli(3000));
        // Edge price is linear in both endpoint pressures.
        assert_eq!(
            p.edge_weight(Weight::UNIT, Weight::from_milli(4500), Weight::from_milli(500)),
            Weight::from_milli(6000)
        );
    }

    #[test]
    fn negotiated_pricing_saturates_at_weight_max() {
        let p = NegotiatedPricing {
            present_milli: u64::MAX,
            history_milli: u64::MAX,
        };
        assert_eq!(p.node_pressure(u32::MAX, Weight::MAX), Weight::MAX);
        assert_eq!(p.history_increment(u32::MAX), Weight::MAX);
        assert_eq!(p.edge_weight(Weight::MAX, Weight::MAX, Weight::ZERO), Weight::MAX);
        // Zero usage with saturated history stays pinned, exactly.
        assert_eq!(p.node_pressure(0, Weight::MAX), Weight::MAX);
    }

    #[test]
    fn preroute_counts() {
        assert_eq!(CongestionLevel::None.preroute_count(), 0);
        assert_eq!(CongestionLevel::Low.preroute_count(), 10);
        assert_eq!(CongestionLevel::Medium.preroute_count(), 20);
        assert_eq!(CongestionLevel::all().len(), 3);
    }
}
