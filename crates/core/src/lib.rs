//! # steiner-route
//!
//! The performance-driven FPGA routing algorithms of *New
//! Performance-Driven FPGA Routing Algorithms* (Alexander & Robins,
//! DAC 1995), implemented over the [`route_graph`] substrate.
//!
//! ## Non-critical nets: graph Steiner trees (GMST)
//!
//! Minimize total wirelength to conserve routing resources:
//!
//! * [`Kmb`] — Kou–Markowsky–Berman, ratio `2·(1 − 1/L)`;
//! * [`Zel`] — Zelikovsky, ratio `11/6`;
//! * [`Iterated`] — the paper's IGMST template, greedily growing a Steiner
//!   set around any base heuristic: [`ikmb()`] and [`izel()`] are the
//!   paper's IKMB and IZEL, inheriting their bases' bounds and beating them
//!   in practice.
//!
//! ## Critical nets: graph Steiner arborescences (GSA)
//!
//! Deliver *optimal* source-sink pathlengths with wirelength as the
//! secondary objective:
//!
//! * [`Djka`] — Dijkstra's SPT pruned to the net (baseline);
//! * [`Dom`] — connect each sink to the nearest node it dominates;
//! * [`Pfa`] — path folding at `MaxDom` merge points (§4.1);
//! * [`idom()`] — the Iterated Dominance construction (§4.2).
//!
//! All eight constructions implement [`SteinerHeuristic`] and can be driven
//! uniformly, which is how the Table 1 experiment and the FPGA router treat
//! them.
//!
//! ```
//! use route_graph::{GridGraph, Weight};
//! use steiner_route::{ikmb, idom, Net, SteinerHeuristic};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let grid = GridGraph::new(8, 8, Weight::UNIT)?;
//! let net = Net::new(
//!     grid.node_at(0, 0)?,
//!     vec![grid.node_at(7, 3)?, grid.node_at(3, 7)?, grid.node_at(7, 7)?],
//! )?;
//! // Wirelength-first routing for a non-critical net:
//! let steiner = ikmb().construct(grid.graph(), &net)?;
//! // Pathlength-first routing for a critical net:
//! let arbor = idom().construct(grid.graph(), &net)?;
//! assert!(arbor.is_shortest_paths_tree(grid.graph(), &net)?);
//! assert!(steiner.cost() <= arbor.cost());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod congestion;
pub mod djka;
pub mod dom;
pub mod dominance;
mod error;
pub mod exact;
pub mod heuristic;
pub mod idom;
pub mod igmst;
pub mod kmb;
pub mod mehlhorn;
pub mod metrics;
mod net;
pub mod pfa;
mod subgraph;
pub mod tradeoff;
mod tree;
pub mod zel;

pub use congestion::NegotiatedPricing;
pub use djka::Djka;
pub use dom::Dom;
pub use error::SteinerError;
pub use heuristic::{HeuristicInfo, IteratedBase, IteratedBaseInfo, SteinerHeuristic};
pub use idom::{idom, idom_with_config, Idom};
pub use igmst::{ikmb, izel, CandidatePool, Iterated, IteratedConfig, IteratedOutcome};
pub use kmb::Kmb;
pub use mehlhorn::MehlhornKmb;
pub use net::Net;
pub use pfa::Pfa;
pub use tradeoff::{Brbc, PrimDijkstra};
pub use tree::RoutingTree;
pub use zel::Zel;
