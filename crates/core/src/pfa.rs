//! The Path-Folding Arborescence (PFA) heuristic — paper §4.1, Figure 9.
//!
//! PFA generalizes the rectilinear RSA construction of Rao–Sadayappan–
//! Hwang–Shor to arbitrary weighted graphs. Starting from the set of net
//! nodes, it repeatedly picks the pair `{p, q}` whose farthest
//! doubly-dominated node `m = MaxDom(p, q)` maximizes `minpath(n0, m)`,
//! replaces the pair by `m`, and iterates; the final arborescence connects
//! each produced node to the nearest node it dominates. Folding paths at
//! far `MaxDom` points maximizes wire overlap while preserving the
//! shortest-paths property.

use std::collections::{BinaryHeap, HashMap};
use std::rc::Rc;

use route_graph::{EdgeId, GraphError, GraphView, NodeId, ShortestPaths, TerminalDistances, Weight};

use crate::dominance::dominates;
use crate::heuristic::{require_connected, HeuristicInfo, SteinerHeuristic};
use crate::igmst::CandidatePool;
use crate::subgraph::spt_over_edges;
use crate::{Net, RoutingTree, SteinerError};

/// The PFA arborescence heuristic.
///
/// Produces a tree in which every source-sink path is a shortest path of
/// the graph, with wirelength competitive with the best Steiner heuristics
/// (paper Table 1). Worst-case examples exist (paper Figures 10 and 11),
/// which the [`Idom`](crate::Idom) construction escapes.
///
/// # Example
///
/// ```
/// use route_graph::{GridGraph, Weight};
/// use steiner_route::{Net, Pfa, SteinerHeuristic};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let grid = GridGraph::new(5, 5, Weight::UNIT)?;
/// let net = Net::new(
///     grid.node_at(0, 0)?,
///     vec![grid.node_at(4, 2)?, grid.node_at(2, 4)?],
/// )?;
/// let tree = Pfa::new().construct(grid.graph(), &net)?;
/// assert!(tree.is_shortest_paths_tree(grid.graph(), &net)?);
/// // Folding shares the common (0,0)→(2,2) stem: 4 + 2 + 2 = 8 < 6 + 6.
/// assert_eq!(tree.cost(), Weight::from_units(8));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Pfa {
    pool: CandidatePool,
}

impl Pfa {
    /// Creates the heuristic with its `MaxDom` search ranging over all of
    /// `V` (the paper's formulation).
    #[must_use]
    pub fn new() -> Pfa {
        Pfa {
            pool: CandidatePool::All,
        }
    }

    /// Creates the heuristic with its `MaxDom` search restricted to an
    /// explicit pool.
    ///
    /// With [`CandidatePool::Explicit`], merge points are drawn from
    /// `terminals ∪ pool` only, every distance query lands inside that set,
    /// and the construction runs off target-restricted Dijkstra with a
    /// bounded read set; other pool kinds behave like [`Pfa::new`].
    #[must_use]
    pub fn with_pool(pool: CandidatePool) -> Pfa {
        Pfa { pool }
    }

    /// The nodes the `MaxDom` scan may visit: `terminals ∪ pool`, live and
    /// deduplicated — or `None` when the scan ranges over all of `V`.
    fn scan_nodes<G: GraphView>(&self, g: &G, net: &Net) -> Option<Vec<NodeId>> {
        let CandidatePool::Explicit(pool) = &self.pool else {
            return None;
        };
        let mut set: Vec<NodeId> = net.terminals().to_vec();
        set.extend(pool.iter().copied());
        set.retain(|&v| g.is_node_live(v));
        set.sort_unstable();
        set.dedup();
        Some(set)
    }
}

impl HeuristicInfo for Pfa {
    fn name(&self) -> &str {
        "PFA"
    }
}

impl<G: GraphView> SteinerHeuristic<G> for Pfa {
    fn construct(&self, g: &G, net: &Net) -> Result<RoutingTree, SteinerError> {
        net.validate_in(g)?;
        let scan = self.scan_nodes(g, net);
        // A restricted scan needs distances at scan-set nodes only; every
        // query below lands on `terminals ∪ pool`, so restricted runs are
        // exact for them.
        let td = match scan.as_deref() {
            Some(set) => TerminalDistances::compute_to_targets(g, net.terminals(), set)?,
            None => TerminalDistances::compute(g, net.terminals())?,
        };
        require_connected(&td, None)?;
        let mut state = FoldState::new(g, net, &td, scan);
        state.fold_all()?;
        state.emit(g, net)
    }
}

/// Max-heap entry: candidate merge of the active pair `{p, q}` at the
/// doubly-dominated node `m` with source-distance `key`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Merge {
    key: Weight,
    m_tiebreak: std::cmp::Reverse<usize>,
    m: NodeId,
    p: NodeId,
    q: NodeId,
}

struct FoldState<'g, G: GraphView> {
    g: &'g G,
    source: NodeId,
    /// Source-distance vector (`d0`).
    d0: Rc<ShortestPaths>,
    /// Per-node shortest-path runs for every node that ever becomes active.
    sp: HashMap<NodeId, Rc<ShortestPaths>>,
    active: Vec<NodeId>,
    /// `M` of Figure 9: terminals plus every MaxDom produced.
    m_set: Vec<NodeId>,
    heap: BinaryHeap<Merge>,
    /// Restricted `MaxDom` scan set (`terminals ∪ pool`), or `None` for
    /// the full node set.
    scan: Option<Vec<NodeId>>,
}

impl<'g, G: GraphView> FoldState<'g, G> {
    fn new(
        g: &'g G,
        net: &Net,
        td: &TerminalDistances,
        scan: Option<Vec<NodeId>>,
    ) -> FoldState<'g, G> {
        let mut sp = HashMap::new();
        for (i, &t) in td.terminals().iter().enumerate() {
            sp.insert(t, td.shared_shortest_paths(i));
        }
        let d0 = td.shared_shortest_paths(0);
        let mut state = FoldState {
            g,
            source: net.source(),
            d0,
            sp,
            active: net.terminals().to_vec(),
            m_set: net.terminals().to_vec(),
            heap: BinaryHeap::new(),
            scan,
        };
        let snapshot = state.active.clone();
        for (i, &p) in snapshot.iter().enumerate() {
            for &q in &snapshot[i + 1..] {
                state.push_pair(p, q);
            }
        }
        state
    }

    /// Is `m` dominated by `p` (some shortest source→p path may pass
    /// through `m`)?
    fn dominated_by(&self, m: NodeId, p: NodeId) -> bool {
        let (Some(d0p), Some(d0m)) = (self.d0.dist(p), self.d0.dist(m)) else {
            return false;
        };
        let Some(dmp) = self.sp[&p].dist(m) else {
            return false;
        };
        dominates(d0p, d0m, dmp)
    }

    /// `MaxDom(p, q)`: the farthest-from-source node dominated by both,
    /// drawn from the scan set when the pool is restricted.
    fn max_dom(&self, p: NodeId, q: NodeId) -> Option<(NodeId, Weight)> {
        let mut best: Option<(Weight, std::cmp::Reverse<usize>, NodeId)> = None;
        let mut checks = 0u64;
        let mut consider = |m: NodeId| {
            checks += 1;
            if !self.dominated_by(m, p) || !self.dominated_by(m, q) {
                return;
            }
            let key = self.d0.dist(m).expect("dominated nodes are reachable");
            let entry = (key, std::cmp::Reverse(m.index()), m);
            if best.is_none_or(|b| entry > b) {
                best = Some(entry);
            }
        };
        match &self.scan {
            Some(set) => set.iter().copied().for_each(&mut consider),
            None => self.g.node_ids().for_each(&mut consider),
        }
        if route_trace::enabled() {
            route_trace::count(route_trace::Counter::PfaDominanceChecks, checks);
        }
        best.map(|(key, _, m)| (m, key))
    }

    fn push_pair(&mut self, p: NodeId, q: NodeId) {
        if let Some((m, key)) = self.max_dom(p, q) {
            self.heap.push(Merge {
                key,
                m_tiebreak: std::cmp::Reverse(m.index()),
                m,
                p,
                q,
            });
        }
    }

    fn is_active(&self, v: NodeId) -> bool {
        self.active.contains(&v)
    }

    fn fold_all(&mut self) -> Result<(), SteinerError> {
        while self.active.len() > 1 {
            let Some(Merge { m, p, q, .. }) = self.heap.pop() else {
                // Cannot occur: any active pair is doubly dominated at
                // least by the source-equivalent node.
                return Err(SteinerError::Graph(GraphError::Disconnected {
                    from: self.source,
                    to: self.active[0],
                }));
            };
            if p == q || !self.is_active(p) || !self.is_active(q) {
                continue; // stale entry
            }
            if route_trace::enabled() {
                route_trace::count(route_trace::Counter::PfaFolds, 1);
            }
            self.active.retain(|&v| v != p && v != q);
            if !self.sp.contains_key(&m) {
                // Merge points and their query partners all live in the
                // scan set, so a restricted run answers exactly.
                let run = Rc::new(match &self.scan {
                    Some(set) => ShortestPaths::run_to_targets(self.g, m, set)?,
                    None => ShortestPaths::run(self.g, m)?,
                });
                self.sp.insert(m, run);
            }
            if !self.m_set.contains(&m) {
                self.m_set.push(m);
            }
            if !self.is_active(m) {
                self.active.push(m);
            }
            let partners: Vec<NodeId> =
                self.active.iter().copied().filter(|&x| x != m).collect();
            for x in partners {
                self.push_pair(m, x);
            }
        }
        Ok(())
    }

    /// Figure 9's output step: connect each `p ∈ M` to the nearest node in
    /// `M` that `p` dominates, take the union, extract the source-rooted
    /// SPT, and prune non-terminal leaves.
    fn emit(&self, g: &G, net: &Net) -> Result<RoutingTree, SteinerError> {
        /// Attachment candidate ordering: (distance, tie-break key).
        type Attachment = ((Weight, (Weight, bool, usize)), NodeId);
        let key = |v: NodeId| -> (Weight, bool, usize) {
            (
                self.d0.dist(v).unwrap_or(Weight::MAX),
                v != self.source,
                v.index(),
            )
        };
        let mut union: Vec<EdgeId> = Vec::new();
        for &p in &self.m_set {
            if p == self.source {
                continue;
            }
            let mut best: Option<Attachment> = None;
            for &s in &self.m_set {
                if s == p || !self.dominated_by(s, p) || key(s) >= key(p) {
                    continue;
                }
                let dsp = self.sp[&p].dist(s).expect("dominated implies reachable");
                let entry = ((dsp, key(s)), s);
                if best.is_none_or(|b| entry < b) {
                    best = Some(entry);
                }
            }
            let (_, s) = best.expect("the source is always a dominated option");
            let path = self.sp[&p].path_to(s)?;
            union.extend_from_slice(path.edges());
        }
        let spt = spt_over_edges(g, &union, self.source)?;
        let tree = RoutingTree::from_edges(g, spt)?;
        tree.pruned_to(g, net.terminals())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use route_graph::{Graph, GridGraph};

    #[test]
    fn folds_shared_stems() {
        // Sinks at (4,2) and (2,4) share the (0,0)→(2,2) stem; MaxDom is
        // (2,2) and PFA must fold there: cost 8 instead of 12.
        let grid = GridGraph::new(5, 5, Weight::UNIT).unwrap();
        let net = Net::new(
            grid.node_at(0, 0).unwrap(),
            vec![grid.node_at(4, 2).unwrap(), grid.node_at(2, 4).unwrap()],
        )
        .unwrap();
        let tree = Pfa::new().construct(grid.graph(), &net).unwrap();
        assert_eq!(tree.cost(), Weight::from_units(8));
        assert!(tree.is_shortest_paths_tree(grid.graph(), &net).unwrap());
        assert!(tree.contains_node(grid.node_at(2, 2).unwrap()));
    }

    #[test]
    fn always_an_arborescence_on_random_nets() {
        
        let mut rng = route_graph::rng::SplitMix64::seed_from_u64(31);
        let grid = GridGraph::new(8, 8, Weight::UNIT).unwrap();
        for trial in 0..20 {
            let pins = route_graph::random::random_net(grid.graph(), 6, &mut rng).unwrap();
            let net = Net::from_terminals(pins).unwrap();
            let tree = Pfa::new().construct(grid.graph(), &net).unwrap();
            assert!(tree.spans(&net), "trial {trial}");
            assert!(
                tree.is_shortest_paths_tree(grid.graph(), &net).unwrap(),
                "trial {trial}"
            );
        }
    }

    #[test]
    fn never_worse_than_dom() {
        // PFA's merge points range over all of V; DOM restricts them to the
        // net. Table 1 ranks PFA ≤ DOM in wirelength on average; check the
        // aggregate over a seeded batch.
        use crate::Dom;
        
        let mut rng = route_graph::rng::SplitMix64::seed_from_u64(32);
        let grid = GridGraph::new(8, 8, Weight::UNIT).unwrap();
        let mut pfa_total = Weight::ZERO;
        let mut dom_total = Weight::ZERO;
        for _ in 0..20 {
            let pins = route_graph::random::random_net(grid.graph(), 6, &mut rng).unwrap();
            let net = Net::from_terminals(pins).unwrap();
            pfa_total += Pfa::new().construct(grid.graph(), &net).unwrap().cost();
            dom_total += Dom::new().construct(grid.graph(), &net).unwrap().cost();
        }
        assert!(pfa_total <= dom_total);
    }

    #[test]
    fn two_pin_net_is_a_shortest_path() {
        let grid = GridGraph::new(6, 6, Weight::UNIT).unwrap();
        let net = Net::new(
            grid.node_at(1, 1).unwrap(),
            vec![grid.node_at(4, 5).unwrap()],
        )
        .unwrap();
        let tree = Pfa::new().construct(grid.graph(), &net).unwrap();
        assert_eq!(tree.cost(), Weight::from_units(7));
    }

    #[test]
    fn collinear_sinks_collapse_to_one_path() {
        let grid = GridGraph::new(1, 7, Weight::UNIT).unwrap();
        let net = Net::new(
            grid.node_at(0, 0).unwrap(),
            vec![
                grid.node_at(0, 3).unwrap(),
                grid.node_at(0, 5).unwrap(),
                grid.node_at(0, 6).unwrap(),
            ],
        )
        .unwrap();
        let tree = Pfa::new().construct(grid.graph(), &net).unwrap();
        assert_eq!(tree.cost(), Weight::from_units(6));
    }

    #[test]
    fn handles_zero_weight_edges() {
        let mut g = Graph::with_nodes(5);
        let n: Vec<NodeId> = g.node_ids().collect();
        g.add_edge(n[0], n[1], Weight::UNIT).unwrap();
        g.add_edge(n[1], n[2], Weight::ZERO).unwrap();
        g.add_edge(n[1], n[3], Weight::ZERO).unwrap();
        g.add_edge(n[2], n[4], Weight::UNIT).unwrap();
        let net = Net::new(n[0], vec![n[3], n[4]]).unwrap();
        let tree = Pfa::new().construct(&g, &net).unwrap();
        assert!(tree.spans(&net));
        assert!(tree.is_shortest_paths_tree(&g, &net).unwrap());
    }

    #[test]
    fn disconnected_net_errors() {
        let mut g = Graph::with_nodes(3);
        let n: Vec<NodeId> = g.node_ids().collect();
        g.add_edge(n[0], n[1], Weight::UNIT).unwrap();
        let net = Net::new(n[0], vec![n[2]]).unwrap();
        assert!(matches!(
            Pfa::new().construct(&g, &net),
            Err(SteinerError::Graph(GraphError::Disconnected { .. }))
        ));
    }
}
