//! Error type for the Steiner/arborescence constructions.

use std::error::Error;
use std::fmt;

use route_graph::{GraphError, NodeId};

/// Errors produced by net construction and routing-tree algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SteinerError {
    /// An underlying graph operation failed.
    Graph(GraphError),
    /// A net listed the same pin twice (or a sink equal to the source).
    DuplicatePin(NodeId),
    /// A net had no pins at all.
    EmptyNet,
    /// The edge set handed to [`RoutingTree`](crate::RoutingTree) contained
    /// a cycle.
    CycleInTree,
    /// The edge set handed to [`RoutingTree`](crate::RoutingTree) formed
    /// more than one connected component.
    ForestNotTree,
    /// A tree was expected to span a terminal but does not contain it.
    MissingTerminal(NodeId),
    /// The exact (exponential-time) solver was asked for more terminals
    /// than it accepts.
    TooManyTerminals {
        /// Terminals requested.
        requested: usize,
        /// Solver limit.
        limit: usize,
    },
}

impl fmt::Display for SteinerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SteinerError::Graph(e) => write!(f, "graph error: {e}"),
            SteinerError::DuplicatePin(n) => write!(f, "pin {n} appears more than once in the net"),
            SteinerError::EmptyNet => write!(f, "net has no pins"),
            SteinerError::CycleInTree => write!(f, "edge set contains a cycle"),
            SteinerError::ForestNotTree => write!(f, "edge set forms a disconnected forest"),
            SteinerError::MissingTerminal(n) => write!(f, "tree does not span terminal {n}"),
            SteinerError::TooManyTerminals { requested, limit } => {
                write!(
                    f,
                    "exact solver limited to {limit} terminals, {requested} requested"
                )
            }
        }
    }
}

impl Error for SteinerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SteinerError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for SteinerError {
    fn from(e: GraphError) -> SteinerError {
        SteinerError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_errors_convert_and_chain() {
        let ge = GraphError::EmptyTerminalSet;
        let se: SteinerError = ge.clone().into();
        assert_eq!(se, SteinerError::Graph(ge));
        assert!(Error::source(&se).is_some());
    }

    #[test]
    fn messages_are_nonempty() {
        let errs: Vec<SteinerError> = vec![
            SteinerError::EmptyNet,
            SteinerError::CycleInTree,
            SteinerError::ForestNotTree,
            SteinerError::DuplicatePin(NodeId::from_index(1)),
            SteinerError::MissingTerminal(NodeId::from_index(2)),
            SteinerError::TooManyTerminals {
                requested: 20,
                limit: 12,
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<SteinerError>();
    }
}
