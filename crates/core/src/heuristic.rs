//! The heuristic traits shared by all constructions.

use route_graph::{Graph, GraphError, GraphView, NodeId, TerminalDistances, Weight};

use crate::{Net, RoutingTree, SteinerError};

/// Graph-independent identity of a heuristic.
///
/// Split off from [`SteinerHeuristic`] so a heuristic's name can be read
/// without naming (or inferring) the graph type it runs over.
pub trait HeuristicInfo {
    /// Short display name of the algorithm, matching the paper's tables
    /// (e.g. `"KMB"`, `"IKMB"`, `"PFA"`).
    fn name(&self) -> &str;
}

/// A routing-tree construction: given a graph view and a net, produce a
/// tree spanning the net.
///
/// Implemented by every algorithm in the paper — the Steiner heuristics
/// (KMB, ZEL, and the iterated IGMST instances) and the arborescence
/// heuristics (DJKA, DOM, PFA, IDOM). Arborescence heuristics honour the
/// net's source/sink distinction; Steiner heuristics ignore it.
///
/// The graph parameter defaults to [`Graph`], so `dyn SteinerHeuristic`
/// and existing `impl SteinerHeuristic for …` blocks keep working. The
/// paper's core constructions implement this for every [`GraphView`],
/// which lets the parallel router drive them through
/// [`GraphOverlay`](route_graph::GraphOverlay) snapshots without cloning.
pub trait SteinerHeuristic<G: GraphView = Graph>: HeuristicInfo {
    /// Constructs a routing tree for `net` in `g`.
    ///
    /// # Errors
    ///
    /// Implementations return [`SteinerError::Graph`] when the net's pins
    /// are invalid or mutually unreachable in the live graph.
    fn construct(&self, g: &G, net: &Net) -> Result<RoutingTree, SteinerError>;
}

/// Graph-independent identity and read-set contract of an iterated base.
///
/// Split off from [`IteratedBase`] for the same reason as
/// [`HeuristicInfo`]: the iterated template needs the base's name and its
/// distance-restriction contract without fixing a graph type.
pub trait IteratedBaseInfo {
    /// Short display name of the base heuristic.
    fn base_name(&self) -> &str;

    /// Whether this base only ever queries [`TerminalDistances`] for
    /// distances and paths between members of the terminal set, the
    /// candidate, and the nodes named by
    /// [`restricted_extra_targets`](IteratedBaseInfo::restricted_extra_targets)
    /// — never to arbitrary graph nodes.
    ///
    /// Bases that return `true` can be driven by a
    /// [`TerminalDistances::compute_to_targets`] instance restricted to
    /// `terminals ∪ extra targets ∪ candidate pool`, turning each
    /// per-terminal Dijkstra from a whole-graph flood into an
    /// early-terminating neighborhood search with bit-identical results.
    /// KMB (distance-graph MST plus path expansion between members) and
    /// DOM (member-only dominance pricing) qualify unconditionally; ZEL
    /// and PFA qualify once their meeting-point/`MaxDom` scans are pinned
    /// to an explicit candidate pool. Bases whose scans roam all of `V`
    /// must leave this `false` and receive full runs.
    fn supports_target_restricted_distances(&self) -> bool {
        false
    }

    /// Extra nodes (beyond terminals and the iterated candidate pool)
    /// that a restricted [`TerminalDistances`] must still cover for this
    /// base's queries to stay exact.
    ///
    /// ZEL and PFA return their explicit scan pool here so standalone
    /// construction ([`construct_via_base`]) restricts each Dijkstra to
    /// `terminals ∪ pool` instead of flooding the graph.
    fn restricted_extra_targets(&self) -> &[NodeId] {
        &[]
    }
}

/// A heuristic `H` usable inside the iterated IGMST/IDOM template
/// (paper §3, Figure 5; §4.2, Figure 12).
///
/// The template repeatedly prices Steiner candidates `t` by re-running `H`
/// over `N ∪ S ∪ {t}`. To avoid re-running Dijkstra for every candidate,
/// the shared shortest-path state lives in a [`TerminalDistances`] (covering
/// `N ∪ S`, source first) and the candidate is passed separately — its
/// distances to all members are read out of the members' own distance
/// vectors.
pub trait IteratedBase<G: GraphView = Graph>: IteratedBaseInfo {
    /// Builds the concrete tree `H(G, T ∪ {candidate})`, where `T` is the
    /// terminal set of `td` (with `td.terminals()[0]` acting as the source
    /// for arborescence bases).
    ///
    /// # Errors
    ///
    /// Returns [`SteinerError::Graph`] with
    /// [`GraphError::Disconnected`] if the extended terminal set cannot be
    /// spanned.
    fn build_with(
        &self,
        g: &G,
        td: &TerminalDistances,
        candidate: Option<NodeId>,
    ) -> Result<RoutingTree, SteinerError>;

    /// The cost `cost(H(G, T ∪ {candidate}))` used for Δ computations.
    ///
    /// The default builds the full tree; bases with a cheaper closed form
    /// (e.g. DOM's distance-graph arborescence cost) override this.
    ///
    /// # Errors
    ///
    /// Same conditions as [`build_with`](IteratedBase::build_with).
    fn cost_with(
        &self,
        g: &G,
        td: &TerminalDistances,
        candidate: Option<NodeId>,
    ) -> Result<Weight, SteinerError> {
        Ok(self.build_with(g, td, candidate)?.cost())
    }

    /// A cheap *upper bound* on [`cost_with`](IteratedBase::cost_with),
    /// used by [`Iterated`](crate::Iterated) in screened mode to rank
    /// candidates before spending full evaluations on the best ones.
    ///
    /// The default is the exact cost itself; KMB overrides it with the
    /// distance-graph MST cost (no path expansion or re-MST).
    ///
    /// # Errors
    ///
    /// Same conditions as [`cost_with`](IteratedBase::cost_with).
    fn screen_with(
        &self,
        g: &G,
        td: &TerminalDistances,
        candidate: Option<NodeId>,
    ) -> Result<Weight, SteinerError> {
        self.cost_with(g, td, candidate)
    }
}

/// Verifies that all of `td`'s terminals (plus the optional candidate) are
/// mutually reachable, returning the first offending pair otherwise.
///
/// # Errors
///
/// Returns [`SteinerError::Graph`] with [`GraphError::Disconnected`].
pub(crate) fn require_connected(
    td: &TerminalDistances,
    candidate: Option<NodeId>,
) -> Result<(), SteinerError> {
    let t0 = td.terminals()[0];
    for j in 1..td.len() {
        if td.dist(0, j).is_none() {
            return Err(GraphError::Disconnected {
                from: t0,
                to: td.terminals()[j],
            }
            .into());
        }
    }
    if let Some(c) = candidate {
        if td.dist_to_node(0, c).is_none() {
            return Err(GraphError::Disconnected { from: t0, to: c }.into());
        }
    }
    Ok(())
}

/// Standalone `construct` implementation shared by bases that are also
/// directly usable heuristics (KMB, ZEL, DOM): compute the terminal
/// distances, then build.
pub(crate) fn construct_via_base<G: GraphView, H: IteratedBase<G>>(
    base: &H,
    g: &G,
    net: &Net,
) -> Result<RoutingTree, SteinerError> {
    net.validate_in(g)?;
    // A base whose queries stay within the terminal set (plus its declared
    // extra targets) needs distances to those nodes only — stop each
    // Dijkstra as soon as the last of them settles.
    let td = if base.supports_target_restricted_distances() {
        TerminalDistances::compute_to_targets(g, net.terminals(), base.restricted_extra_targets())?
    } else {
        TerminalDistances::compute(g, net.terminals())?
    };
    base.build_with(g, &td, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use route_graph::GridGraph;

    #[test]
    fn require_connected_reports_the_pair() {
        let mut grid = GridGraph::new(1, 4, Weight::UNIT).unwrap();
        let n: Vec<NodeId> = (0..4).map(|c| grid.node_at(0, c).unwrap()).collect();
        let e = grid.edge_between(n[1], n[2]).unwrap();
        grid.graph_mut().remove_edge(e).unwrap();
        let td = TerminalDistances::compute(grid.graph(), &[n[0], n[3]]).unwrap();
        let err = require_connected(&td, None).unwrap_err();
        assert_eq!(
            err,
            SteinerError::Graph(GraphError::Disconnected {
                from: n[0],
                to: n[3]
            })
        );
        let td2 = TerminalDistances::compute(grid.graph(), &[n[0], n[1]]).unwrap();
        assert!(require_connected(&td2, None).is_ok());
        let err2 = require_connected(&td2, Some(n[3])).unwrap_err();
        assert_eq!(
            err2,
            SteinerError::Graph(GraphError::Disconnected {
                from: n[0],
                to: n[3]
            })
        );
    }
}
