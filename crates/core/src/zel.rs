//! The Zelikovsky (ZEL) 11/6-approximation graph Steiner heuristic.
//!
//! Paper Appendix §8.2 (and \[39\]): repeatedly pick the terminal *triple*
//! whose contraction (together with its best Steiner meeting point `v_z`)
//! wins the most against the current distance-graph MST, then finish with
//! KMB over the original net plus the collected meeting points.

use route_graph::mst::prim_complete;
use route_graph::{GraphView, NodeId, ShortestPaths, TerminalDistances, Weight};

use crate::heuristic::{
    construct_via_base, require_connected, HeuristicInfo, IteratedBase, IteratedBaseInfo,
    SteinerHeuristic,
};
use crate::igmst::CandidatePool;
use crate::kmb::Kmb;
use crate::{Net, RoutingTree, SteinerError};

/// The ZEL heuristic (paper Appendix Figure 18), performance ratio 11/6.
///
/// Also serves as the base `H` of the iterated IZEL construction via
/// [`IteratedBase`]. For nets with fewer than three pins it degenerates to
/// KMB exactly.
///
/// # Example
///
/// ```
/// use route_graph::{GridGraph, Weight};
/// use steiner_route::{Kmb, Net, SteinerHeuristic, Zel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let grid = GridGraph::new(5, 5, Weight::UNIT)?;
/// let net = Net::new(
///     grid.node_at(0, 2)?,
///     vec![grid.node_at(2, 0)?, grid.node_at(2, 4)?, grid.node_at(4, 2)?],
/// )?;
/// let zel = Zel::new().construct(grid.graph(), &net)?;
/// let kmb = Kmb::new().construct(grid.graph(), &net)?;
/// assert!(zel.cost() <= kmb.cost());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Zel {
    pool: CandidatePool,
}

impl Zel {
    /// Creates the heuristic with its meeting-point search ranging over all
    /// of `V` (the paper's formulation).
    #[must_use]
    pub fn new() -> Zel {
        Zel {
            pool: CandidatePool::All,
        }
    }

    /// Creates the heuristic with its meeting-point search restricted to an
    /// explicit pool.
    ///
    /// With [`CandidatePool::Explicit`], every distance query lands on
    /// `terminals ∪ pool`, so the construction can run off
    /// target-restricted Dijkstra and records a bounded read set; other
    /// pool kinds behave like [`Zel::new`].
    #[must_use]
    pub fn with_pool(pool: CandidatePool) -> Zel {
        Zel { pool }
    }

    /// The nodes the meeting-point scan may visit: `terminals ∪ pool`,
    /// live and deduplicated — or `None` when the scan ranges over all of
    /// `V`.
    fn scan_nodes<G: GraphView>(&self, g: &G, td: &TerminalDistances) -> Option<Vec<NodeId>> {
        let CandidatePool::Explicit(pool) = &self.pool else {
            return None;
        };
        let mut set: Vec<NodeId> = td.terminals().to_vec();
        set.extend(pool.iter().copied());
        set.retain(|&v| g.is_node_live(v));
        set.sort_unstable();
        set.dedup();
        Some(set)
    }
}

impl HeuristicInfo for Zel {
    fn name(&self) -> &str {
        "ZEL"
    }
}

impl<G: GraphView> SteinerHeuristic<G> for Zel {
    fn construct(&self, g: &G, net: &Net) -> Result<RoutingTree, SteinerError> {
        construct_via_base(self, g, net)
    }
}

impl IteratedBaseInfo for Zel {
    fn base_name(&self) -> &str {
        "ZEL"
    }

    /// With an explicit pool the meeting-point scan, the candidate run and
    /// the KMB finish all query distances within `terminals ∪ pool ∪
    /// candidate` only, so target-restricted runs are exact. The
    /// unrestricted scan roams all of `V` and needs full runs.
    fn supports_target_restricted_distances(&self) -> bool {
        matches!(self.pool, CandidatePool::Explicit(_))
    }

    fn restricted_extra_targets(&self) -> &[NodeId] {
        match &self.pool {
            CandidatePool::Explicit(nodes) => nodes,
            _ => &[],
        }
    }
}

impl<G: GraphView> IteratedBase<G> for Zel {
    #[allow(clippy::needless_range_loop)] // index loops mirror the matrix formulation
    fn build_with(
        &self,
        g: &G,
        td: &TerminalDistances,
        candidate: Option<NodeId>,
    ) -> Result<RoutingTree, SteinerError> {
        require_connected(td, candidate)?;
        let base = td.len();
        let k = base + usize::from(candidate.is_some());
        if k < 3 {
            return Kmb::new().build_with(g, td, candidate);
        }
        // The meeting-point scan set: `terminals ∪ pool` when the pool is
        // explicit, all of `V` otherwise.
        let scan = self.scan_nodes(g, td);
        let full_v: Vec<NodeId>;
        let scan_set: &[NodeId] = if let Some(set) = scan.as_deref() {
            set
        } else {
            full_v = g.node_ids().collect();
            &full_v
        };
        // Distance vectors from every (extended) terminal. The candidate
        // has no precomputed run, so give it one — stopping at the scan set
        // when it is restricted (the candidate's distances are only ever
        // read at scan-set nodes).
        let cand_sp = candidate
            .map(|c| match scan.as_deref() {
                Some(set) => ShortestPaths::run_to_targets(g, c, set),
                None => ShortestPaths::run(g, c),
            })
            .transpose()
            .map_err(SteinerError::Graph)?;
        let dist_to = |i: usize, v: NodeId| -> Option<Weight> {
            if i == base {
                cand_sp.as_ref().expect("index implies candidate").dist(v)
            } else {
                td.dist_to_node(i, v)
            }
        };
        // Working distance matrix over the extended terminal set.
        let mut w = vec![vec![Weight::ZERO; k]; k];
        for i in 0..k {
            for j in (i + 1)..k {
                let d = if j == base {
                    dist_to(i, candidate.expect("index implies candidate"))
                } else {
                    td.dist(i, j)
                }
                .ok_or(SteinerError::Graph(route_graph::GraphError::Disconnected {
                    from: terminal_node(td, candidate, i),
                    to: terminal_node(td, candidate, j),
                }))?;
                w[i][j] = d;
                w[j][i] = d;
            }
        }
        // Best Steiner meeting point per triple.
        let traced = route_trace::enabled();
        let mut triples: Vec<Triple> = Vec::new();
        for i in 0..k {
            for j in (i + 1)..k {
                for l in (j + 1)..k {
                    let mut best: Option<(Weight, NodeId)> = None;
                    for &v in scan_set {
                        let (Some(a), Some(b), Some(c)) =
                            (dist_to(i, v), dist_to(j, v), dist_to(l, v))
                        else {
                            continue;
                        };
                        let total = a + b + c;
                        if best.is_none_or(|(bw, _)| total < bw) {
                            best = Some((total, v));
                        }
                    }
                    if let Some((dist_z, v_z)) = best {
                        triples.push(Triple {
                            members: [i, j, l],
                            v_z,
                            dist_z,
                        });
                    }
                }
            }
        }
        // Greedy contraction while a positive win exists.
        let mut meeting_points: Vec<NodeId> = Vec::new();
        loop {
            let current = mst_cost(&w);
            let mut best: Option<(Weight, usize)> = None;
            for (idx, t) in triples.iter().enumerate() {
                let contracted = mst_cost_contracted(&w, t.members);
                // win = MST(G') − MST(G'[z]) − dist_z, computed in signed
                // milli to allow negative wins.
                let win = current.as_milli() as i128
                    - contracted.as_milli() as i128
                    - t.dist_z.as_milli() as i128;
                if win > 0 {
                    let win = Weight::from_milli(win as u64);
                    if best.is_none_or(|(bw, _)| win > bw) {
                        best = Some((win, idx));
                    }
                }
            }
            let Some((_, idx)) = best else { break };
            let t = triples[idx];
            let [i, j, l] = t.members;
            for (a, b) in [(i, j), (i, l)] {
                w[a][b] = Weight::ZERO;
                w[b][a] = Weight::ZERO;
            }
            meeting_points.push(t.v_z);
        }
        if traced {
            route_trace::count(
                route_trace::Counter::ZelTriplesEvaluated,
                triples.len() as u64,
            );
            route_trace::count(
                route_trace::Counter::ZelTriplesContracted,
                meeting_points.len() as u64,
            );
        }
        // Finish with KMB over N ∪ {v_z…} (∪ candidate).
        let mut extended = td.clone();
        for v in meeting_points {
            if extended.index_of(v).is_none() && candidate != Some(v) {
                extended.push_terminal(g, v)?;
            }
        }
        let tree = Kmb::new().build_with(g, &extended, candidate)?;
        // The meeting points are aids, not span requirements: prune back to
        // the true span set.
        let mut keep: Vec<NodeId> = td.terminals().to_vec();
        if let Some(c) = candidate {
            keep.push(c);
        }
        tree.pruned_to(g, &keep)
    }
}

#[derive(Debug, Clone, Copy)]
struct Triple {
    members: [usize; 3],
    v_z: NodeId,
    dist_z: Weight,
}

fn terminal_node(td: &TerminalDistances, candidate: Option<NodeId>, i: usize) -> NodeId {
    if i < td.len() {
        td.terminals()[i]
    } else {
        candidate.expect("index implies candidate")
    }
}

fn mst_cost(w: &[Vec<Weight>]) -> Weight {
    prim_complete(w.len(), |i, j| Some(w[i][j]))
        .expect("complete finite matrix always spans")
        .cost
}

fn mst_cost_contracted(w: &[Vec<Weight>], [i, j, l]: [usize; 3]) -> Weight {
    prim_complete(w.len(), |a, b| {
        let zeroed = (a == i && b == j)
            || (a == j && b == i)
            || (a == i && b == l)
            || (a == l && b == i);
        Some(if zeroed { Weight::ZERO } else { w[a][b] })
    })
    .expect("complete finite matrix always spans")
    .cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use route_graph::{Graph, GridGraph};

    #[test]
    fn degenerates_to_kmb_for_two_pins() {
        let grid = GridGraph::new(4, 4, Weight::UNIT).unwrap();
        let net = Net::new(
            grid.node_at(0, 0).unwrap(),
            vec![grid.node_at(3, 3).unwrap()],
        )
        .unwrap();
        let zel = Zel::new().construct(grid.graph(), &net).unwrap();
        let kmb = Kmb::new().construct(grid.graph(), &net).unwrap();
        assert_eq!(zel.cost(), kmb.cost());
        assert_eq!(zel.cost(), Weight::from_units(6));
    }

    #[test]
    fn finds_the_center_of_a_plus() {
        // Four terminals forming a plus; the optimal tree is a star through
        // the center, cost 8 — ZEL's triple contraction discovers it.
        let grid = GridGraph::new(5, 5, Weight::UNIT).unwrap();
        let net = Net::new(
            grid.node_at(0, 2).unwrap(),
            vec![
                grid.node_at(2, 0).unwrap(),
                grid.node_at(2, 4).unwrap(),
                grid.node_at(4, 2).unwrap(),
            ],
        )
        .unwrap();
        let tree = Zel::new().construct(grid.graph(), &net).unwrap();
        assert!(tree.spans(&net));
        assert_eq!(tree.cost(), Weight::from_units(8));
    }

    #[test]
    fn never_worse_than_kmb_on_random_nets() {
        
        let mut rng = route_graph::rng::SplitMix64::seed_from_u64(21);
        let grid = GridGraph::new(7, 7, Weight::UNIT).unwrap();
        for trial in 0..10 {
            let pins = route_graph::random::random_net(grid.graph(), 5, &mut rng).unwrap();
            let net = Net::from_terminals(pins).unwrap();
            let zel = Zel::new().construct(grid.graph(), &net).unwrap();
            let kmb = Kmb::new().construct(grid.graph(), &net).unwrap();
            assert!(zel.cost() <= kmb.cost(), "trial {trial}");
            assert!(zel.spans(&net));
        }
    }

    #[test]
    fn izel_never_worse_than_zel() {
        
        let mut rng = route_graph::rng::SplitMix64::seed_from_u64(22);
        let grid = GridGraph::new(6, 6, Weight::UNIT).unwrap();
        let izel = crate::igmst::izel();
        for trial in 0..5 {
            let pins = route_graph::random::random_net(grid.graph(), 5, &mut rng).unwrap();
            let net = Net::from_terminals(pins).unwrap();
            let zel = Zel::new().construct(grid.graph(), &net).unwrap();
            let iz = izel.construct(grid.graph(), &net).unwrap();
            assert!(iz.cost() <= zel.cost(), "trial {trial}");
        }
    }

    #[test]
    fn disconnected_terminals_error() {
        let mut g = Graph::with_nodes(5);
        let n: Vec<NodeId> = g.node_ids().collect();
        g.add_edge(n[0], n[1], Weight::UNIT).unwrap();
        g.add_edge(n[1], n[2], Weight::UNIT).unwrap();
        g.add_edge(n[3], n[4], Weight::UNIT).unwrap();
        let net = Net::new(n[0], vec![n[2], n[4]]).unwrap();
        assert!(matches!(
            Zel::new().construct(&g, &net),
            Err(SteinerError::Graph(
                route_graph::GraphError::Disconnected { .. }
            ))
        ));
    }
}
