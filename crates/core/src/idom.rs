//! The Iterated Dominance (IDOM) heuristic — paper §4.2, Figure 12.
//!
//! IDOM applies the iterated template to the DOM spanning-arborescence
//! construction: it grows a Steiner set `S` by repeatedly accepting the
//! candidate `t` with maximal positive
//! `ΔDOM(G, N, S ∪ {t}) = cost(DOM(G, N ∪ S)) − cost(DOM(G, N ∪ S ∪ {t}))`
//! and returns `DOM(G, N ∪ S)`. The spanning arborescence is iterated
//! because it is easy to compute (`O(|N|²)` per call on the distance
//! graph), while the Steiner arborescence it approximates is NP-complete —
//! and not approximable better than `O(log N)` (paper Figure 14).

use crate::dom::Dom;
use crate::igmst::{Iterated, IteratedConfig};

/// The IDOM heuristic: [`Iterated`] over [`Dom`].
///
/// Produces shortest-paths trees (every accepted configuration is a DOM
/// arborescence over `N ∪ S`) whose wirelength in practice matches the best
/// Steiner heuristics (paper Table 1), while DJKA and DOM trail well
/// behind.
pub type Idom = Iterated<Dom>;

/// Convenience constructor for IDOM with the default configuration.
///
/// # Example
///
/// ```
/// use route_graph::{GridGraph, Weight};
/// use steiner_route::{idom, Net, SteinerHeuristic};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let grid = GridGraph::new(5, 5, Weight::UNIT)?;
/// let net = Net::new(
///     grid.node_at(0, 0)?,
///     vec![grid.node_at(4, 2)?, grid.node_at(2, 4)?],
/// )?;
/// let tree = idom().construct(grid.graph(), &net)?;
/// assert!(tree.is_shortest_paths_tree(grid.graph(), &net)?);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn idom() -> Idom {
    Iterated::new(Dom::new())
}

/// IDOM with an explicit [`IteratedConfig`].
#[must_use]
pub fn idom_with_config(config: IteratedConfig) -> Idom {
    Iterated::with_config(Dom::new(), config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dom, HeuristicInfo, Net, SteinerHeuristic};
    use route_graph::{GridGraph, Weight};

    #[test]
    fn name_is_idom() {
        assert_eq!(idom().name(), "IDOM");
    }

    #[test]
    fn output_is_always_an_arborescence() {
        
        let mut rng = route_graph::rng::SplitMix64::seed_from_u64(41);
        let grid = GridGraph::new(7, 7, Weight::UNIT).unwrap();
        for trial in 0..10 {
            let pins = route_graph::random::random_net(grid.graph(), 5, &mut rng).unwrap();
            let net = Net::from_terminals(pins).unwrap();
            let tree = idom().construct(grid.graph(), &net).unwrap();
            assert!(tree.spans(&net), "trial {trial}");
            assert!(
                tree.is_shortest_paths_tree(grid.graph(), &net).unwrap(),
                "trial {trial}"
            );
        }
    }

    #[test]
    fn improves_on_dom_via_steiner_points() {
        // Sinks at (4,2) and (2,4) from source (0,0): neither dominates the
        // other, so plain DOM prices both independently (distance-graph
        // cost 12; its expansion may get lucky and share a prefix), while
        // IDOM *guarantees* the (2,2) fold and reaches the optimal cost 8.
        let grid = GridGraph::new(5, 5, Weight::UNIT).unwrap();
        let net = Net::new(
            grid.node_at(0, 0).unwrap(),
            vec![grid.node_at(4, 2).unwrap(), grid.node_at(2, 4).unwrap()],
        )
        .unwrap();
        use crate::heuristic::IteratedBase;
        let td = route_graph::TerminalDistances::compute(grid.graph(), net.terminals()).unwrap();
        let dom_priced = Dom::new().cost_with(grid.graph(), &td, None).unwrap();
        let dom = Dom::new().construct(grid.graph(), &net).unwrap();
        let idom_tree = idom().construct(grid.graph(), &net).unwrap();
        assert_eq!(dom_priced, Weight::from_units(12));
        assert_eq!(idom_tree.cost(), Weight::from_units(8));
        assert!(idom_tree.cost() <= dom.cost());
        assert!(idom_tree
            .is_shortest_paths_tree(grid.graph(), &net)
            .unwrap());
    }

    #[test]
    fn never_worse_than_dom_in_aggregate() {
        
        let mut rng = route_graph::rng::SplitMix64::seed_from_u64(42);
        let grid = GridGraph::new(8, 8, Weight::UNIT).unwrap();
        for trial in 0..10 {
            let pins = route_graph::random::random_net(grid.graph(), 6, &mut rng).unwrap();
            let net = Net::from_terminals(pins).unwrap();
            let dom = Dom::new().construct(grid.graph(), &net).unwrap();
            let it = idom().construct(grid.graph(), &net).unwrap();
            assert!(it.cost() <= dom.cost(), "trial {trial}");
        }
    }

    #[test]
    fn figure13_style_instance_reaches_cost_5() {
        // Paper Figure 13: source A, sinks {B, C, D}; the initial DOM
        // solution over the distance graph costs 8, and accepting Steiner
        // candidates S3 then S2 drives the arborescence to cost 5. We use
        // the same shape: a spine A—s2—s3 with B hanging off s2 and C, D
        // off s3, plus direct sink edges that DOM is forced to use at first.
        use route_graph::{Graph, NodeId};
        let mut g = Graph::with_nodes(6);
        let n: Vec<NodeId> = g.node_ids().collect();
        let (a, b, c, d, s2, s3) = (n[0], n[1], n[2], n[3], n[4], n[5]);
        let u = Weight::from_units;
        g.add_edge(a, s2, u(1)).unwrap();
        g.add_edge(s2, b, u(1)).unwrap();
        g.add_edge(s2, s3, u(1)).unwrap();
        g.add_edge(s3, c, u(1)).unwrap();
        g.add_edge(s3, d, u(1)).unwrap();
        let net = Net::new(a, vec![b, c, d]).unwrap();
        // Distance-graph view: d0(B) = 2, d0(C) = d0(D) = 3; C dominates
        // nothing nearer than the source, D likewise (dist(C,D) = 2,
        // 3 ≠ 3 + 2), so DOM = 2 + 3 + 3 = 8 on the distance graph.
        let dom = Dom::new();
        let td =
            route_graph::TerminalDistances::compute(&g, net.terminals()).unwrap();
        use crate::heuristic::IteratedBase;
        assert_eq!(dom.cost_with(&g, &td, None).unwrap(), u(8));
        // IDOM accepts the spine nodes and lands on the 5-edge star.
        let tree = idom().construct(&g, &net).unwrap();
        assert_eq!(tree.cost(), u(5));
        assert!(tree.is_shortest_paths_tree(&g, &net).unwrap());
    }
}
