//! Shortest-path trees over edge-set subgraphs (crate-internal).
//!
//! Both arborescence heuristics finish by taking the union of carefully
//! chosen shortest paths and extracting a shortest-paths tree *within that
//! union* rooted at the net's source. Because the union contains, for every
//! spanned node, some path whose length equals the true graph distance, the
//! restricted SPT inherits the arborescence property while sharing
//! overlapped wire.

use std::collections::{BinaryHeap, HashMap};

use route_graph::{EdgeId, GraphError, GraphView, NodeId, Weight};

use crate::SteinerError;

/// Computes the shortest-paths tree rooted at `root` of the subgraph of `g`
/// induced by `edges` (duplicates tolerated), returning the tree's edges.
///
/// Nodes of the subgraph unreachable from `root` are silently dropped —
/// callers guarantee relevance of the union.
pub(crate) fn spt_over_edges<G: GraphView>(
    g: &G,
    edges: &[EdgeId],
    root: NodeId,
) -> Result<Vec<EdgeId>, SteinerError> {
    g.require_live_node(root).map_err(SteinerError::Graph)?;
    let mut adj: HashMap<NodeId, Vec<(NodeId, EdgeId, Weight)>> = HashMap::new();
    let mut seen = HashMap::new();
    for &e in edges {
        if seen.insert(e, ()).is_some() {
            continue;
        }
        if !g.is_edge_usable(e) {
            return Err(SteinerError::Graph(GraphError::EdgeRemoved(e)));
        }
        let (a, b) = g.endpoints(e)?;
        let w = g.weight(e)?;
        adj.entry(a).or_default().push((b, e, w));
        adj.entry(b).or_default().push((a, e, w));
    }
    let mut dist: HashMap<NodeId, Weight> = HashMap::new();
    let mut parent_edge: HashMap<NodeId, EdgeId> = HashMap::new();
    let mut heap: BinaryHeap<std::cmp::Reverse<(Weight, usize)>> = BinaryHeap::new();
    let mut best: HashMap<NodeId, Weight> = HashMap::new();
    best.insert(root, Weight::ZERO);
    heap.push(std::cmp::Reverse((Weight::ZERO, root.index())));
    while let Some(std::cmp::Reverse((d, vi))) = heap.pop() {
        let v = NodeId::from_index(vi);
        if dist.contains_key(&v) {
            continue;
        }
        if best.get(&v) != Some(&d) {
            continue; // stale heap entry
        }
        dist.insert(v, d);
        let Some(nbrs) = adj.get(&v) else { continue };
        for &(u, e, w) in nbrs {
            if dist.contains_key(&u) {
                continue;
            }
            let nd = d.saturating_add(w);
            if best.get(&u).is_none_or(|&cur| nd < cur) {
                best.insert(u, nd);
                parent_edge.insert(u, e);
                heap.push(std::cmp::Reverse((nd, u.index())));
            }
        }
    }
    let mut out: Vec<EdgeId> = parent_edge.into_values().collect();
    // HashMap iteration order is randomized; keep the library's outputs
    // deterministic for identical inputs.
    out.sort_unstable();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RoutingTree;
    use route_graph::GridGraph;

    #[test]
    fn spt_over_full_grid_union_matches_graph_distances() {
        let grid = GridGraph::new(4, 4, Weight::UNIT).unwrap();
        let all: Vec<EdgeId> = grid.graph().edge_ids().collect();
        let root = grid.node_at(0, 0).unwrap();
        let spt = spt_over_edges(grid.graph(), &all, root).unwrap();
        let tree = RoutingTree::from_edges(grid.graph(), spt).unwrap();
        let dist = tree.distances_from(root).unwrap();
        for v in grid.graph().node_ids() {
            assert_eq!(
                dist[&v],
                Weight::from_units(grid.manhattan(root, v) as u64)
            );
        }
    }

    #[test]
    fn restricted_union_drops_unreachable_parts() {
        let grid = GridGraph::new(1, 5, Weight::UNIT).unwrap();
        let n: Vec<NodeId> = (0..5).map(|c| grid.node_at(0, c).unwrap()).collect();
        // Only the edge between n3 and n4 — unreachable from n0.
        let e = grid.edge_between(n[3], n[4]).unwrap();
        let spt = spt_over_edges(grid.graph(), &[e], n[0]).unwrap();
        assert!(spt.is_empty());
    }

    #[test]
    fn overlapping_paths_merge_into_a_tree() {
        let grid = GridGraph::new(2, 3, Weight::UNIT).unwrap();
        let root = grid.node_at(0, 0).unwrap();
        // Union contains a cycle (the whole 2×3 grid); SPT must break it.
        let all: Vec<EdgeId> = grid.graph().edge_ids().collect();
        let spt = spt_over_edges(grid.graph(), &all, root).unwrap();
        assert_eq!(spt.len(), 5); // 6 nodes -> 5 tree edges
        assert!(RoutingTree::from_edges(grid.graph(), spt).is_ok());
    }
}
