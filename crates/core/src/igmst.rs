//! The Iterated Graph Minimal Steiner Tree (IGMST) template — paper §3.
//!
//! Given any base heuristic `H`, IGMST greedily grows a set `S` of Steiner
//! nodes: at each step it selects the candidate `t ∈ V − (N ∪ S)` with the
//! largest positive cost savings
//! `ΔH(G, N, S ∪ {t}) = cost(H(G, N ∪ S)) − cost(H(G, N ∪ S ∪ {t}))`,
//! terminating when no candidate improves and returning `H(G, N ∪ S)`.
//! Instantiating `H = KMB` yields **IKMB**; `H = ZEL` yields **IZEL**; the
//! same template over the DOM spanning-arborescence heuristic yields
//! **IDOM** (paper §4.2).
//!
//! The template also supports the paper's two practical accelerations:
//! *batched* candidate acceptance ("rather than adding Steiner points one
//! at a time, they may be added in batches… the number of such rounds tends
//! to be very small (≤ 3 for typical instances)") and restricted candidate
//! pools for large routing graphs.

use route_graph::{GraphView, NodeId, TerminalDistances, Weight};

use crate::heuristic::{HeuristicInfo, IteratedBase, IteratedBaseInfo, SteinerHeuristic};
use crate::{Net, RoutingTree, SteinerError};

/// Which graph nodes the template considers as Steiner candidates.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[non_exhaustive]
pub enum CandidatePool {
    /// Every live non-terminal node — the paper-faithful setting.
    #[default]
    All,
    /// Only nodes lying within `slack` of a shortest path between some pair
    /// of terminals, i.e. nodes `v` with
    /// `min_{i<j} dist(i,v) + dist(v,j) − dist(i,j) ≤ slack`.
    ///
    /// With `slack = 0` this keeps exactly the nodes on *some* shortest
    /// path between a terminal pair — the only candidates that can appear
    /// inside a distance-graph MST expansion — and shrinks the pool
    /// dramatically on large FPGA routing graphs.
    NearNet {
        /// Allowed detour above the pairwise shortest-path cost.
        slack: Weight,
    },
    /// An explicit, caller-chosen candidate list.
    Explicit(Vec<NodeId>),
}

/// Tuning knobs for [`Iterated`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IteratedConfig {
    /// Accept several non-interfering candidates per evaluation round
    /// instead of exactly one (each acceptance is still re-verified against
    /// the updated terminal set, so cost strictly decreases).
    pub batched: bool,
    /// Candidate pool strategy.
    pub pool: CandidatePool,
    /// Optional hard cap on the number of accepted Steiner points.
    pub max_steiner_points: Option<usize>,
    /// Rank candidates with the base's cheap
    /// [`screen_with`](crate::IteratedBase::screen_with) upper bound and
    /// spend full evaluations only on the most promising ones.
    /// Acceptances are still verified with the exact cost, so the invariant
    /// "cost strictly decreases" is unaffected; only ranking and pruning
    /// are approximate. Intended for chip-scale routing graphs; Table 1
    /// style experiments keep this off (paper-faithful exhaustive Δ).
    pub screened: bool,
    /// In screened mode, stop a round after this many consecutive fully
    /// evaluated candidates that failed to improve.
    pub screen_patience: usize,
}

impl Default for IteratedConfig {
    fn default() -> IteratedConfig {
        IteratedConfig {
            batched: true,
            pool: CandidatePool::All,
            max_steiner_points: None,
            screened: false,
            screen_patience: 8,
        }
    }
}

/// The IGMST template instantiated with a base heuristic `H`.
///
/// # Example
///
/// ```
/// use route_graph::{GridGraph, Weight};
/// use steiner_route::{ikmb, Kmb, Net, SteinerHeuristic};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let grid = GridGraph::new(5, 5, Weight::UNIT)?;
/// let net = Net::new(
///     grid.node_at(0, 2)?,
///     vec![grid.node_at(2, 0)?, grid.node_at(2, 4)?, grid.node_at(4, 2)?],
/// )?;
/// let base = Kmb::new().construct(grid.graph(), &net)?;
/// let iterated = ikmb().construct(grid.graph(), &net)?;
/// assert!(iterated.cost() <= base.cost());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Iterated<H> {
    base: H,
    config: IteratedConfig,
    name: String,
}

impl<H: IteratedBaseInfo> Iterated<H> {
    /// Wraps `base` with the default configuration (batched, all
    /// candidates).
    #[must_use]
    pub fn new(base: H) -> Iterated<H> {
        Iterated::with_config(base, IteratedConfig::default())
    }

    /// Wraps `base` with an explicit configuration.
    #[must_use]
    pub fn with_config(base: H, config: IteratedConfig) -> Iterated<H> {
        let name = format!("I{}", base.base_name());
        Iterated { base, config, name }
    }

    /// The wrapped base heuristic.
    #[must_use]
    pub fn base(&self) -> &H {
        &self.base
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &IteratedConfig {
        &self.config
    }

    /// Runs the template and additionally reports the accepted Steiner
    /// points and the number of evaluation rounds.
    ///
    /// # Errors
    ///
    /// Returns [`SteinerError::Graph`] if the net is invalid or its pins
    /// are mutually unreachable.
    pub fn construct_traced<G: GraphView>(
        &self,
        g: &G,
        net: &Net,
    ) -> Result<IteratedOutcome, SteinerError>
    where
        H: IteratedBase<G>,
    {
        net.validate_in(g)?;
        // With an explicit candidate pool and a base whose queries stay
        // within `terminals ∪ pool`, each Dijkstra can stop once that set
        // is settled: accepted Steiner points come from the pool, so
        // every future member-pair query hits a settled node. Results
        // are bit-identical to full runs; only the flooded area shrinks
        // (and with it the speculative read set under parallel routing).
        let mut td = match &self.config.pool {
            CandidatePool::Explicit(nodes)
                if self.base.supports_target_restricted_distances() =>
            {
                // The base may declare scan nodes of its own (ZEL's
                // meeting-point pool); the restricted runs must cover them
                // too, even if they differ from the template's pool.
                let extra = self.base.restricted_extra_targets();
                if extra.is_empty() {
                    TerminalDistances::compute_to_targets(g, net.terminals(), nodes)?
                } else {
                    let mut all: Vec<NodeId> = nodes.clone();
                    all.extend_from_slice(extra);
                    TerminalDistances::compute_to_targets(g, net.terminals(), &all)?
                }
            }
            _ => TerminalDistances::compute(g, net.terminals())?,
        };
        let mut current = self.base.cost_with(g, &td, None)?;
        let pool = self.candidate_pool(g, &td);
        let mut steiner_points: Vec<NodeId> = Vec::new();
        let mut rounds = 0usize;
        let traced = route_trace::enabled();
        let mut evaluated = 0u64;
        loop {
            rounds += 1;
            // Price every remaining candidate against the current set —
            // exactly in the default mode, with the base's cheap upper
            // bound in screened mode.
            let reference = if self.config.screened {
                self.base.screen_with(g, &td, None)?
            } else {
                current
            };
            let mut scored: Vec<(Weight, NodeId)> = Vec::new();
            for &t in &pool {
                if td.index_of(t).is_some() {
                    continue;
                }
                evaluated += 1;
                let priced = if self.config.screened {
                    self.base.screen_with(g, &td, Some(t))
                } else {
                    self.base.cost_with(g, &td, Some(t))
                };
                if let Ok(c) = priced {
                    if c < reference {
                        scored.push((c, t));
                    }
                }
            }
            if scored.is_empty() {
                break;
            }
            scored.sort();
            let mut accepted_this_round = 0usize;
            let mut misses = 0usize;
            for (_, t) in scored {
                if self
                    .config
                    .max_steiner_points
                    .is_some_and(|cap| steiner_points.len() >= cap)
                {
                    break;
                }
                // Re-verify against the (possibly grown) set with the exact
                // cost; the scores were computed before earlier acceptances
                // this round (and, in screened mode, are only upper bounds).
                let c = self.base.cost_with(g, &td, Some(t))?;
                if c < current {
                    td.push_terminal(g, t)?;
                    steiner_points.push(t);
                    current = c;
                    accepted_this_round += 1;
                    misses = 0;
                    if !self.config.batched {
                        break;
                    }
                } else if self.config.screened {
                    misses += 1;
                    if misses >= self.config.screen_patience {
                        break;
                    }
                }
            }
            if accepted_this_round == 0 {
                break;
            }
            if self
                .config
                .max_steiner_points
                .is_some_and(|cap| steiner_points.len() >= cap)
            {
                break;
            }
        }
        if traced {
            use route_trace::Counter;
            route_trace::count(Counter::SteinerCandidatesEvaluated, evaluated);
            route_trace::count(Counter::SteinerCandidatesAccepted, steiner_points.len() as u64);
            route_trace::count(Counter::SteinerRounds, rounds as u64);
        }
        let tree = self
            .base
            .build_with(g, &td, None)?
            .pruned_to(g, net.terminals())?;
        Ok(IteratedOutcome {
            tree,
            steiner_points,
            rounds,
        })
    }

    fn candidate_pool<G: GraphView>(&self, g: &G, td: &TerminalDistances) -> Vec<NodeId> {
        match &self.config.pool {
            CandidatePool::All => g
                .node_ids()
                .filter(|&v| td.index_of(v).is_none())
                .collect(),
            CandidatePool::Explicit(nodes) => nodes
                .iter()
                .copied()
                .filter(|&v| g.is_node_live(v) && td.index_of(v).is_none())
                .collect(),
            CandidatePool::NearNet { slack } => {
                let k = td.len();
                g.node_ids()
                    .filter(|&v| td.index_of(v).is_none())
                    .filter(|&v| {
                        for i in 0..k {
                            let Some(div) = td.dist_to_node(i, v) else {
                                return false;
                            };
                            for j in (i + 1)..k {
                                let (Some(djv), Some(dij)) =
                                    (td.dist_to_node(j, v), td.dist(i, j))
                                else {
                                    continue;
                                };
                                if div + djv <= dij + *slack {
                                    return true;
                                }
                            }
                        }
                        false
                    })
                    .collect()
            }
        }
    }
}

/// The result of [`Iterated::construct_traced`].
#[derive(Debug, Clone)]
pub struct IteratedOutcome {
    /// The final tree `H(G, N ∪ S)`, pruned to the original net.
    pub tree: RoutingTree,
    /// Accepted Steiner points, in acceptance order.
    pub steiner_points: Vec<NodeId>,
    /// Number of candidate-evaluation rounds performed.
    pub rounds: usize,
}

impl<H: IteratedBaseInfo> HeuristicInfo for Iterated<H> {
    fn name(&self) -> &str {
        &self.name
    }
}

impl<G: GraphView, H: IteratedBase<G>> SteinerHeuristic<G> for Iterated<H> {
    fn construct(&self, g: &G, net: &Net) -> Result<RoutingTree, SteinerError> {
        Ok(self.construct_traced(g, net)?.tree)
    }
}

/// Convenience constructor for **IKMB** — IGMST over [`Kmb`](crate::Kmb)
/// with the default configuration.
#[must_use]
pub fn ikmb() -> Iterated<crate::Kmb> {
    Iterated::new(crate::Kmb::new())
}

/// Convenience constructor for **IZEL** — IGMST over [`Zel`](crate::Zel)
/// with the default configuration.
#[must_use]
pub fn izel() -> Iterated<crate::Zel> {
    Iterated::new(crate::Zel::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Kmb;
    use route_graph::{Graph, GraphError, GridGraph};

    /// The plus-shaped 4-terminal instance where one central Steiner point
    /// is the optimal join.
    fn plus_instance() -> (GridGraph, Net) {
        let grid = GridGraph::new(5, 5, Weight::UNIT).unwrap();
        let net = Net::new(
            grid.node_at(0, 2).unwrap(),
            vec![
                grid.node_at(2, 0).unwrap(),
                grid.node_at(2, 4).unwrap(),
                grid.node_at(4, 2).unwrap(),
            ],
        )
        .unwrap();
        (grid, net)
    }

    #[test]
    fn ikmb_finds_the_center_steiner_point() {
        let (grid, net) = plus_instance();
        let outcome = ikmb().construct_traced(grid.graph(), &net).unwrap();
        // Optimal: star through the center (2,2) of total cost 8.
        assert_eq!(outcome.tree.cost(), Weight::from_units(8));
        assert!(outcome.tree.spans(&net));
        let center = grid.node_at(2, 2).unwrap();
        assert!(outcome.tree.contains_node(center));
    }

    #[test]
    fn ikmb_never_worse_than_kmb() {
        
        let mut rng = route_graph::rng::SplitMix64::seed_from_u64(99);
        for trial in 0..15 {
            let grid = GridGraph::new(7, 7, Weight::UNIT).unwrap();
            let pins = route_graph::random::random_net(grid.graph(), 5, &mut rng).unwrap();
            let net = Net::from_terminals(pins).unwrap();
            let kmb = Kmb::new().construct(grid.graph(), &net).unwrap();
            let ik = ikmb().construct(grid.graph(), &net).unwrap();
            assert!(ik.cost() <= kmb.cost(), "trial {trial}");
            assert!(ik.spans(&net));
        }
    }

    #[test]
    fn single_candidate_mode_matches_batched_cost_or_better() {
        let (grid, net) = plus_instance();
        let one_at_a_time = Iterated::with_config(
            Kmb::new(),
            IteratedConfig {
                batched: false,
                ..IteratedConfig::default()
            },
        );
        let t = one_at_a_time.construct(grid.graph(), &net).unwrap();
        assert_eq!(t.cost(), Weight::from_units(8));
    }

    #[test]
    fn max_steiner_points_cap_is_respected() {
        let (grid, net) = plus_instance();
        let capped = Iterated::with_config(
            Kmb::new(),
            IteratedConfig {
                max_steiner_points: Some(0),
                ..IteratedConfig::default()
            },
        );
        let outcome = capped.construct_traced(grid.graph(), &net).unwrap();
        assert!(outcome.steiner_points.is_empty());
        let kmb = Kmb::new().construct(grid.graph(), &net).unwrap();
        assert_eq!(outcome.tree.cost(), kmb.cost());
    }

    #[test]
    fn near_net_pool_still_finds_the_center() {
        let (grid, net) = plus_instance();
        let restricted = Iterated::with_config(
            Kmb::new(),
            IteratedConfig {
                pool: CandidatePool::NearNet {
                    slack: Weight::ZERO,
                },
                ..IteratedConfig::default()
            },
        );
        let tree = restricted.construct(grid.graph(), &net).unwrap();
        assert_eq!(tree.cost(), Weight::from_units(8));
    }

    #[test]
    fn explicit_pool_restricts_candidates() {
        let (grid, net) = plus_instance();
        let center = grid.node_at(2, 2).unwrap();
        let only_center = Iterated::with_config(
            Kmb::new(),
            IteratedConfig {
                pool: CandidatePool::Explicit(vec![center]),
                ..IteratedConfig::default()
            },
        );
        let outcome = only_center.construct_traced(grid.graph(), &net).unwrap();
        // The pool admits only the center; it is either accepted (when the
        // base KMB tree was suboptimal) or unnecessary (when KMB's path
        // expansion already shared wire through it) — never any other node.
        assert!(outcome.steiner_points.len() <= 1);
        assert!(outcome
            .steiner_points
            .iter()
            .all(|&s| s == center));
        assert_eq!(outcome.tree.cost(), Weight::from_units(8));
    }

    #[test]
    fn rounds_stay_small() {
        // Paper §3: "the number of such rounds tends to be very small (≤ 3
        // for typical instances)" — plus the final no-improvement round.
        
        let mut rng = route_graph::rng::SplitMix64::seed_from_u64(4);
        let grid = GridGraph::new(8, 8, Weight::UNIT).unwrap();
        for _ in 0..10 {
            let pins = route_graph::random::random_net(grid.graph(), 6, &mut rng).unwrap();
            let net = Net::from_terminals(pins).unwrap();
            let outcome = ikmb().construct_traced(grid.graph(), &net).unwrap();
            assert!(outcome.rounds <= 4, "rounds = {}", outcome.rounds);
        }
    }

    #[test]
    fn figure6_style_instance_improves_kmb_via_two_steiner_points() {
        // Paper Figure 6 shows IKMB driving an initial KMB solution of cost
        // 7 down to the optimal 5 by accepting Steiner points S2 then S3.
        // We reproduce the same behaviour with a 6-node instance where the
        // two hub nodes form the optimal star (cost 5) but KMB, seeing only
        // strictly-cheaper direct terminal-terminal edges, builds cost 6.7:
        //   hubs:   A—s2 = B—s2 = C—s3 = D—s3 = 1, s2—s3 = 1
        //   direct: A—B = C—D = 1.9, B—C = 2.9
        let mut g = Graph::with_nodes(6);
        let n: Vec<NodeId> = g.node_ids().collect();
        let (a, b, c, d, s2, s3) = (n[0], n[1], n[2], n[3], n[4], n[5]);
        let u = Weight::from_units;
        let m = Weight::from_milli;
        g.add_edge(a, s2, u(1)).unwrap();
        g.add_edge(b, s2, u(1)).unwrap();
        g.add_edge(s2, s3, u(1)).unwrap();
        g.add_edge(c, s3, u(1)).unwrap();
        g.add_edge(d, s3, u(1)).unwrap();
        g.add_edge(a, b, m(1900)).unwrap();
        g.add_edge(c, d, m(1900)).unwrap();
        g.add_edge(b, c, m(2900)).unwrap();
        let net = Net::new(a, vec![b, c, d]).unwrap();
        let kmb = Kmb::new().construct(&g, &net).unwrap();
        assert_eq!(kmb.cost(), m(6700)); // A-B + B-C + C-D
        let outcome = ikmb().construct_traced(&g, &net).unwrap();
        assert_eq!(outcome.tree.cost(), u(5));
        assert!(outcome.steiner_points.contains(&s2));
        assert!(outcome.steiner_points.contains(&s3));
    }

    #[test]
    fn disconnected_net_errors() {
        let mut g = Graph::with_nodes(3);
        let n: Vec<NodeId> = g.node_ids().collect();
        g.add_edge(n[0], n[1], Weight::UNIT).unwrap();
        let net = Net::new(n[0], vec![n[2]]).unwrap();
        assert!(matches!(
            ikmb().construct(&g, &net),
            Err(SteinerError::Graph(GraphError::Disconnected { .. }))
        ));
    }
}
