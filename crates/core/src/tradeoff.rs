//! Radius–cost tradeoff baselines: BRBC and Prim–Dijkstra (AHHK).
//!
//! Paper §2: "The bounded-radius bounded-cost (BRBC) method of \[14\] and
//! the AHHK method of \[9\] both achieve wirelength-radius tradeoffs in
//! weighted graphs, but can not directly produce a shortest paths tree
//! with minimum wirelength. Rather, with the tradeoff parameter tuned
//! completely towards pathlength minimization, the methods of \[14\] and \[9\]
//! both produce the same shortest-paths tree as would Dijkstra's
//! algorithm." These implementations make that comparison concrete: the
//! tradeoff experiment sweeps their parameters and shows PFA/IDOM
//! dominating the whole curve (optimal radius *and* competitive cost).

use std::collections::HashSet;

use route_graph::mst::prim_complete;
use route_graph::{EdgeId, Graph, NodeId, TerminalDistances, Weight};

use crate::heuristic::{require_connected, HeuristicInfo, SteinerHeuristic};
use crate::subgraph::spt_over_edges;
use crate::{Net, RoutingTree, SteinerError};

/// The Prim–Dijkstra tradeoff of Alpert–Hu–Huang–Kahng–Karger (AHHK).
///
/// Grows a tree over the net's distance graph, attaching the non-tree
/// terminal `v` minimizing `c·ℓ(u) + dist(u, v)` where `ℓ(u)` is `u`'s
/// tree pathlength from the source. `c = 0` degenerates to Prim (a
/// distance-graph MST, pure wirelength); `c = 1` degenerates to Dijkstra
/// over the distance graph (optimal radius).
///
/// # Example
///
/// ```
/// use route_graph::{GridGraph, Weight};
/// use steiner_route::{Net, PrimDijkstra, SteinerHeuristic};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let grid = GridGraph::new(6, 6, Weight::UNIT)?;
/// let net = Net::new(
///     grid.node_at(0, 0)?,
///     vec![grid.node_at(5, 2)?, grid.node_at(2, 5)?],
/// )?;
/// // Fully delay-tuned: the tree realizes every sink's shortest path.
/// let spt = PrimDijkstra::new(1000).construct(grid.graph(), &net)?;
/// assert!(spt.is_shortest_paths_tree(grid.graph(), &net)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrimDijkstra {
    /// Tradeoff parameter `c` in milli-units (0 = Prim … 1000 = Dijkstra).
    c_milli: u64,
}

impl PrimDijkstra {
    /// Creates the heuristic with `c = c_milli / 1000`, clamped to `[0, 1]`.
    #[must_use]
    pub fn new(c_milli: u64) -> PrimDijkstra {
        PrimDijkstra {
            c_milli: c_milli.min(1000),
        }
    }

    /// The tradeoff parameter in milli-units.
    #[must_use]
    pub fn c_milli(&self) -> u64 {
        self.c_milli
    }
}

impl HeuristicInfo for PrimDijkstra {
    fn name(&self) -> &str {
        "AHHK"
    }
}

impl SteinerHeuristic for PrimDijkstra {
    #[allow(clippy::needless_range_loop)] // index loops mirror the matrix formulation
    fn construct(&self, g: &Graph, net: &Net) -> Result<RoutingTree, SteinerError> {
        net.validate_in(g)?;
        let td = TerminalDistances::compute(g, net.terminals())?;
        require_connected(&td, None)?;
        let k = td.len();
        // Priority of attaching v through u: c·ℓ(u) + dist(u, v), in milli.
        let mut in_tree = vec![false; k];
        let mut label = vec![Weight::ZERO; k]; // ℓ: tree pathlength from source
        in_tree[0] = true;
        let mut order: Vec<(usize, usize)> = Vec::with_capacity(k - 1); // (u, v)
        for _ in 1..k {
            let mut best: Option<(u128, usize, usize)> = None;
            for u in 0..k {
                if !in_tree[u] {
                    continue;
                }
                for v in 0..k {
                    if in_tree[v] {
                        continue;
                    }
                    let Some(duv) = td.dist(u, v) else { continue };
                    let score = u128::from(self.c_milli) * u128::from(label[u].as_milli())
                        / 1000
                        + u128::from(duv.as_milli());
                    if best.is_none_or(|(b, _, _)| score < b) {
                        best = Some((score, u, v));
                    }
                }
            }
            let (_, u, v) = best.expect("connected terminals always attach");
            in_tree[v] = true;
            label[v] = label[u] + td.dist(u, v).expect("edge chosen exists");
            order.push((u, v));
        }
        // Embed into G: splice each attachment path into the growing tree.
        splice_paths(g, &td, net, &order)
    }
}

/// The bounded-radius bounded-cost construction of Cong–Kahng–Robins–
/// Sarrafzadeh–Wong (BRBC).
///
/// Walks a DFS tour of the net's distance-graph MST; whenever the tour
/// length accumulated since the last shortcut exceeds `ε · minpath(n0, v)`
/// at a terminal `v`, the direct shortest path to `v` is merged in. The
/// shortest-paths tree over the resulting union has radius at most
/// `(1 + ε)` times optimal and cost at most `(1 + 2/ε)` times the MST.
///
/// `ε = 0` yields Dijkstra's SPT over the distance graph; large `ε` yields
/// the plain distance-graph MST.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Brbc {
    /// Radius slack `ε` in milli-units (0 = pure SPT).
    epsilon_milli: u64,
}

impl Brbc {
    /// Creates the heuristic with `ε = epsilon_milli / 1000`.
    #[must_use]
    pub fn new(epsilon_milli: u64) -> Brbc {
        Brbc { epsilon_milli }
    }

    /// The radius slack in milli-units.
    #[must_use]
    pub fn epsilon_milli(&self) -> u64 {
        self.epsilon_milli
    }
}

impl HeuristicInfo for Brbc {
    fn name(&self) -> &str {
        "BRBC"
    }
}

impl SteinerHeuristic for Brbc {
    fn construct(&self, g: &Graph, net: &Net) -> Result<RoutingTree, SteinerError> {
        net.validate_in(g)?;
        let td = TerminalDistances::compute(g, net.terminals())?;
        require_connected(&td, None)?;
        let k = td.len();
        let mst = prim_complete(k, |i, j| td.dist(i, j))
            .expect("connectivity checked above");
        // Adjacency of the distance-graph MST.
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); k];
        for &(i, j) in &mst.edges {
            adj[i].push(j);
            adj[j].push(i);
        }
        // DFS tour from the source accumulating tour length; collect
        // terminals owed a shortcut.
        let mut shortcuts: Vec<usize> = Vec::new();
        let mut visited = vec![false; k];
        let mut stack = vec![(0usize, usize::MAX)];
        let mut tour = Weight::ZERO;
        while let Some((v, from)) = stack.pop() {
            if visited[v] {
                continue;
            }
            visited[v] = true;
            if from != usize::MAX {
                tour = tour.saturating_add(td.dist(from, v).expect("MST edge exists"));
            }
            let d0 = td.dist(0, v).expect("connected");
            let budget = Weight::from_milli(
                (u128::from(self.epsilon_milli) * u128::from(d0.as_milli()) / 1000) as u64,
            );
            if v != 0 && tour > budget {
                shortcuts.push(v);
                tour = Weight::ZERO;
            }
            for &u in adj[v].iter().rev() {
                if !visited[u] {
                    stack.push((u, v));
                }
            }
        }
        // Union: expanded MST edges + expanded shortcut paths, then the
        // source-rooted SPT of the union.
        let mut union: Vec<EdgeId> = Vec::new();
        for &(i, j) in &mst.edges {
            union.extend_from_slice(td.path(i, j)?.edges());
        }
        for v in shortcuts {
            union.extend_from_slice(td.path(0, v)?.edges());
        }
        let spt = spt_over_edges(g, &union, net.source())?;
        let tree = RoutingTree::from_edges(g, spt)?;
        tree.pruned_to(g, net.terminals())
    }
}

/// Embeds a sequence of distance-graph attachments `(u, v)` into `G`,
/// walking each concrete `u → v` shortest path backwards from `v` and
/// splicing it onto the first node already in the tree.
fn splice_paths(
    g: &Graph,
    td: &TerminalDistances,
    net: &Net,
    order: &[(usize, usize)],
) -> Result<RoutingTree, SteinerError> {
    let mut tree_nodes: HashSet<NodeId> = HashSet::new();
    tree_nodes.insert(net.source());
    let mut edges: Vec<EdgeId> = Vec::new();
    for &(u, v) in order {
        let path = td.path(u, v)?; // from terminal u to terminal v
        // Walk backwards from v, collecting until we meet the tree.
        let nodes = path.nodes();
        let path_edges = path.edges();
        let mut collected: Vec<EdgeId> = Vec::new();
        let mut newly: Vec<NodeId> = vec![*nodes.last().expect("paths are nonempty")];
        for idx in (0..path_edges.len()).rev() {
            let from = nodes[idx];
            if tree_nodes.contains(&nodes[idx + 1]) {
                // v itself was already in the tree; nothing to add.
                collected.clear();
                newly.clear();
                break;
            }
            collected.push(path_edges[idx]);
            if tree_nodes.contains(&from) {
                break;
            }
            newly.push(from);
        }
        edges.extend(collected);
        tree_nodes.extend(newly);
    }
    let tree = RoutingTree::from_edges(g, edges)?;
    tree.pruned_to(g, net.terminals())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::optimal_max_pathlength;
    use crate::Kmb;
    
    use route_graph::GridGraph;

    fn random_instance(seed: u64) -> (GridGraph, Net) {
        let mut rng = route_graph::rng::SplitMix64::seed_from_u64(seed);
        let grid = GridGraph::new(9, 9, Weight::UNIT).unwrap();
        let pins = route_graph::random::random_net(grid.graph(), 6, &mut rng).unwrap();
        (grid, Net::from_terminals(pins).unwrap())
    }

    #[test]
    fn fully_delay_tuned_ahhk_is_a_shortest_paths_tree() {
        // Paper §2: "with the tradeoff parameter tuned completely towards
        // pathlength minimization, [AHHK] produces the same shortest-paths
        // tree as would Dijkstra's algorithm."
        for seed in 0..8 {
            let (grid, net) = random_instance(seed);
            let tree = PrimDijkstra::new(1000).construct(grid.graph(), &net).unwrap();
            assert!(tree.spans(&net), "seed {seed}");
            assert!(
                tree.is_shortest_paths_tree(grid.graph(), &net).unwrap(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn fully_delay_tuned_brbc_is_a_shortest_paths_tree() {
        for seed in 0..8 {
            let (grid, net) = random_instance(seed);
            let tree = Brbc::new(0).construct(grid.graph(), &net).unwrap();
            assert!(
                tree.is_shortest_paths_tree(grid.graph(), &net).unwrap(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn prim_end_of_ahhk_matches_mst_cost_scale() {
        // c = 0 is Prim over the distance graph; after splicing, cost can
        // only shrink below the distance-MST cost.
        for seed in 0..8 {
            let (grid, net) = random_instance(seed);
            let td = TerminalDistances::compute(grid.graph(), net.terminals()).unwrap();
            let mst = prim_complete(td.len(), |i, j| td.dist(i, j)).unwrap();
            let tree = PrimDijkstra::new(0).construct(grid.graph(), &net).unwrap();
            assert!(tree.cost() <= mst.cost, "seed {seed}");
            assert!(tree.spans(&net));
        }
    }

    #[test]
    fn brbc_radius_respects_its_guarantee() {
        for seed in 0..8 {
            for eps in [0u64, 250, 500, 1000, 4000] {
                let (grid, net) = random_instance(seed);
                let tree = Brbc::new(eps).construct(grid.graph(), &net).unwrap();
                let radius = tree.max_pathlength(&net).unwrap();
                let opt = optimal_max_pathlength(grid.graph(), &net).unwrap();
                let bound = opt.as_milli() as u128 * (1000 + u128::from(eps)) / 1000;
                assert!(
                    u128::from(radius.as_milli()) <= bound,
                    "seed {seed} eps {eps}: radius {radius} vs bound {bound}"
                );
            }
        }
    }

    #[test]
    fn tradeoff_moves_in_the_right_direction() {
        // Aggregated over seeds, radius should not increase and cost
        // should not decrease as the delay emphasis grows.
        let mut radius_lo = 0u64;
        let mut radius_hi = 0u64;
        let mut cost_lo = 0u64;
        let mut cost_hi = 0u64;
        for seed in 0..10 {
            let (grid, net) = random_instance(seed);
            let lo = PrimDijkstra::new(0).construct(grid.graph(), &net).unwrap();
            let hi = PrimDijkstra::new(1000).construct(grid.graph(), &net).unwrap();
            radius_lo += lo.max_pathlength(&net).unwrap().as_milli();
            radius_hi += hi.max_pathlength(&net).unwrap().as_milli();
            cost_lo += lo.cost().as_milli();
            cost_hi += hi.cost().as_milli();
        }
        assert!(radius_hi <= radius_lo);
        assert!(cost_hi >= cost_lo);
    }

    #[test]
    fn baselines_cannot_beat_kmb_and_arborescences_simultaneously() {
        // The paper's point: neither baseline delivers optimal radius *and*
        // Steiner-quality cost at once. At c = 1/ε = 0 the radius is
        // optimal but the cost is spanning-tree cost (no Steiner nodes), so
        // it cannot undercut IKMB systematically.
        let mut kmb_total = 0u64;
        let mut ahhk_total = 0u64;
        for seed in 0..10 {
            let (grid, net) = random_instance(seed);
            kmb_total += Kmb::new()
                .construct(grid.graph(), &net)
                .unwrap()
                .cost()
                .as_milli();
            ahhk_total += PrimDijkstra::new(1000)
                .construct(grid.graph(), &net)
                .unwrap()
                .cost()
                .as_milli();
        }
        assert!(ahhk_total >= kmb_total);
    }

    #[test]
    fn disconnected_nets_error() {
        let mut g = Graph::with_nodes(3);
        let n: Vec<NodeId> = g.node_ids().collect();
        g.add_edge(n[0], n[1], Weight::UNIT).unwrap();
        let net = Net::new(n[0], vec![n[2]]).unwrap();
        assert!(PrimDijkstra::new(500).construct(&g, &net).is_err());
        assert!(Brbc::new(500).construct(&g, &net).is_err());
    }
}
