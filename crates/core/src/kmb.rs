//! The Kou–Markowsky–Berman (KMB) graph Steiner heuristic.
//!
//! Paper Appendix §8.1 (and \[26\]): performance ratio `2·(1 − 1/L)` where `L`
//! is the maximum leaf count of an optimal solution.
//!
//! 1. Build the *distance graph* `G'`: the complete graph over the net with
//!    shortest-path costs as edge weights.
//! 2. Compute `MST(G')` and expand each of its edges into a concrete
//!    shortest path, yielding a subgraph `G''`.
//! 3. Compute `MST(G'')` and delete pendant non-terminal leaves.

use route_graph::mst::{kruskal_subgraph, prim_complete};
use route_graph::{EdgeId, GraphView, NodeId, TerminalDistances, Weight};

use crate::heuristic::{
    construct_via_base, require_connected, HeuristicInfo, IteratedBase, IteratedBaseInfo,
    SteinerHeuristic,
};
use crate::{Net, RoutingTree, SteinerError};

/// The KMB heuristic (paper Appendix Figure 17).
///
/// Also serves as the base `H` of the iterated IKMB construction via
/// [`IteratedBase`].
///
/// # Example
///
/// ```
/// use route_graph::{GridGraph, Weight};
/// use steiner_route::{Kmb, Net, SteinerHeuristic};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let grid = GridGraph::new(4, 4, Weight::UNIT)?;
/// let net = Net::new(
///     grid.node_at(0, 0)?,
///     vec![grid.node_at(3, 0)?, grid.node_at(0, 3)?],
/// )?;
/// let tree = Kmb::new().construct(grid.graph(), &net)?;
/// assert!(tree.spans(&net));
/// assert_eq!(tree.cost(), Weight::from_units(6));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Kmb;

impl Kmb {
    /// Creates the heuristic.
    #[must_use]
    pub fn new() -> Kmb {
        Kmb
    }
}

impl HeuristicInfo for Kmb {
    fn name(&self) -> &str {
        "KMB"
    }
}

impl<G: GraphView> SteinerHeuristic<G> for Kmb {
    fn construct(&self, g: &G, net: &Net) -> Result<RoutingTree, SteinerError> {
        construct_via_base(self, g, net)
    }
}

impl IteratedBaseInfo for Kmb {
    fn base_name(&self) -> &str {
        "KMB"
    }

    /// KMB queries `td` only between members and the candidate: the
    /// distance-graph MST reads member-pair distances, and the expansion
    /// extracts member-to-member paths (whose interior nodes Dijkstra
    /// settled before the endpoints). Target-restricted runs are
    /// therefore exact for it.
    fn supports_target_restricted_distances(&self) -> bool {
        true
    }
}

impl<G: GraphView> IteratedBase<G> for Kmb {
    /// Distance-graph MST cost: an upper bound on the full KMB cost (steps
    /// 2–3 can only shed weight), computable in `O(k²)` with no path
    /// expansion.
    fn screen_with(
        &self,
        _g: &G,
        td: &TerminalDistances,
        candidate: Option<NodeId>,
    ) -> Result<Weight, SteinerError> {
        require_connected(td, candidate)?;
        let base = td.len();
        let k = base + usize::from(candidate.is_some());
        let dist = |i: usize, j: usize| -> Option<Weight> {
            match (i == base, j == base) {
                (false, false) => td.dist(i, j),
                (true, false) => td.dist_to_node(j, candidate.expect("index implies candidate")),
                (false, true) => td.dist_to_node(i, candidate.expect("index implies candidate")),
                (true, true) => unreachable!("prim never queries the diagonal"),
            }
        };
        prim_complete(k, dist)
            .map(|mst| mst.cost)
            .ok_or_else(|| {
                SteinerError::Graph(route_graph::GraphError::Disconnected {
                    from: td.terminals()[0],
                    to: td.terminals()[0],
                })
            })
    }

    fn build_with(
        &self,
        g: &G,
        td: &TerminalDistances,
        candidate: Option<NodeId>,
    ) -> Result<RoutingTree, SteinerError> {
        require_connected(td, candidate)?;
        if route_trace::enabled() {
            route_trace::count(route_trace::Counter::KmbConstructions, 1);
        }
        let base = td.len();
        let k = base + usize::from(candidate.is_some());
        // Step 1+2: MST over the (extended) distance graph.
        let dist = |i: usize, j: usize| -> Option<Weight> {
            match (i == base, j == base) {
                (false, false) => td.dist(i, j),
                (true, false) => td.dist_to_node(j, candidate.expect("index implies candidate")),
                (false, true) => td.dist_to_node(i, candidate.expect("index implies candidate")),
                (true, true) => unreachable!("prim never queries the diagonal"),
            }
        };
        let mst = prim_complete(k, dist).ok_or_else(|| {
            // require_connected passed, so this cannot happen; keep a
            // meaningful error anyway.
            SteinerError::Graph(route_graph::GraphError::Disconnected {
                from: td.terminals()[0],
                to: td.terminals()[0],
            })
        })?;
        // Expand distance-graph edges into concrete shortest paths.
        let mut edges: Vec<EdgeId> = Vec::new();
        for &(i, j) in &mst.edges {
            let path = if j == base {
                td.path_to_node(i, candidate.expect("index implies candidate"))?
            } else if i == base {
                td.path_to_node(j, candidate.expect("index implies candidate"))?
            } else {
                td.path(i, j)?
            };
            edges.extend_from_slice(path.edges());
        }
        // Step 3: MST of the expanded subgraph, then prune.
        let sub = kruskal_subgraph(g, &edges);
        let tree = RoutingTree::from_edges(g, sub.edges)?;
        let mut keep: Vec<NodeId> = td.terminals().to_vec();
        if let Some(c) = candidate {
            keep.push(c);
        }
        tree.pruned_to(g, &keep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use route_graph::{Graph, GridGraph};

    #[test]
    fn two_pin_net_is_a_shortest_path() {
        let grid = GridGraph::new(5, 5, Weight::UNIT).unwrap();
        let net = Net::new(
            grid.node_at(0, 0).unwrap(),
            vec![grid.node_at(4, 3).unwrap()],
        )
        .unwrap();
        let tree = Kmb::new().construct(grid.graph(), &net).unwrap();
        assert_eq!(tree.cost(), Weight::from_units(7));
        assert!(tree.spans(&net));
    }

    #[test]
    fn three_corner_net_on_grid() {
        // Terminals at three corners of a 4×4 grid; the MST of the distance
        // graph costs 6+6=12; KMB cannot do worse and the optimum (a T
        // shape through the center column) costs 9... on a grid the
        // distance-graph MST expansion often shares edges. Just assert the
        // standard bounds: spans, cost between optimal (9) and MST (12).
        let grid = GridGraph::new(4, 4, Weight::UNIT).unwrap();
        let net = Net::new(
            grid.node_at(0, 0).unwrap(),
            vec![grid.node_at(3, 0).unwrap(), grid.node_at(0, 3).unwrap()],
        )
        .unwrap();
        let tree = Kmb::new().construct(grid.graph(), &net).unwrap();
        assert!(tree.spans(&net));
        assert!(tree.cost() >= Weight::from_units(6));
        assert!(tree.cost() <= Weight::from_units(12));
    }

    #[test]
    fn terminals_only_graph_uses_direct_edges() {
        // A triangle where the direct edges beat any detour.
        let mut g = Graph::with_nodes(3);
        let n: Vec<NodeId> = g.node_ids().collect();
        g.add_edge(n[0], n[1], Weight::from_units(1)).unwrap();
        g.add_edge(n[1], n[2], Weight::from_units(1)).unwrap();
        g.add_edge(n[0], n[2], Weight::from_units(5)).unwrap();
        let net = Net::new(n[0], vec![n[1], n[2]]).unwrap();
        let tree = Kmb::new().construct(&g, &net).unwrap();
        assert_eq!(tree.cost(), Weight::from_units(2));
    }

    #[test]
    fn classic_kmb_example_uses_steiner_node() {
        // A star: hub h connected to three terminals at weight 2 each, and
        // terminal-terminal edges at weight 3.9 would be cheaper pairwise
        // (3.9 < 4) but the hub star (cost 6) beats the two-edge distance
        // MST expansion (7.8)… use integer weights: hub edges 2, direct
        // edges 3. Distance MST = 3+3 = 6; hub star = 6. KMB must not
        // exceed 6.
        let mut g = Graph::with_nodes(4);
        let n: Vec<NodeId> = g.node_ids().collect();
        let hub = n[3];
        for &t in &n[..3] {
            g.add_edge(hub, t, Weight::from_units(2)).unwrap();
        }
        g.add_edge(n[0], n[1], Weight::from_units(3)).unwrap();
        g.add_edge(n[1], n[2], Weight::from_units(3)).unwrap();
        g.add_edge(n[0], n[2], Weight::from_units(3)).unwrap();
        let net = Net::new(n[0], vec![n[1], n[2]]).unwrap();
        let tree = Kmb::new().construct(&g, &net).unwrap();
        assert!(tree.spans(&net));
        assert!(tree.cost() <= Weight::from_units(6));
    }

    #[test]
    fn disconnected_terminals_error() {
        let mut g = Graph::with_nodes(4);
        let n: Vec<NodeId> = g.node_ids().collect();
        g.add_edge(n[0], n[1], Weight::UNIT).unwrap();
        g.add_edge(n[2], n[3], Weight::UNIT).unwrap();
        let net = Net::new(n[0], vec![n[2]]).unwrap();
        assert!(matches!(
            Kmb::new().construct(&g, &net),
            Err(SteinerError::Graph(
                route_graph::GraphError::Disconnected { .. }
            ))
        ));
    }

    #[test]
    fn candidate_extension_can_reduce_cost() {
        // Same star as above but with direct terminal-terminal edges of
        // weight 5: distance MST over terminals = 4+4 = 8 (via hub paths),
        // which already shares the hub. Supplying the hub as an explicit
        // candidate must not increase cost.
        let mut g = Graph::with_nodes(4);
        let n: Vec<NodeId> = g.node_ids().collect();
        let hub = n[3];
        for &t in &n[..3] {
            g.add_edge(hub, t, Weight::from_units(2)).unwrap();
        }
        let td = TerminalDistances::compute(&g, &n[..3]).unwrap();
        let plain = Kmb::new().build_with(&g, &td, None).unwrap();
        let with_hub = Kmb::new().build_with(&g, &td, Some(hub)).unwrap();
        assert!(with_hub.cost() <= plain.cost());
        assert_eq!(with_hub.cost(), Weight::from_units(6));
    }

    #[test]
    fn prunes_nonterminal_leaves() {
        // Path a-b-c-d with net {a, c}: expansion can only contain a..c; d
        // never appears. Also ensure Steiner candidate that dangles is
        // pruned: candidate d extends beyond c and is kept only because it
        // is in the span set.
        let mut g = Graph::with_nodes(4);
        let n: Vec<NodeId> = g.node_ids().collect();
        for i in 0..3 {
            g.add_edge(n[i], n[i + 1], Weight::UNIT).unwrap();
        }
        let net = Net::new(n[0], vec![n[2]]).unwrap();
        let tree = Kmb::new().construct(&g, &net).unwrap();
        assert!(!tree.contains_node(n[3]));
        assert_eq!(tree.cost(), Weight::from_units(2));
    }
}
