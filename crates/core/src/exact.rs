//! Exact graph Steiner trees via Dreyfus–Wagner (test oracle).
//!
//! The GMST problem is NP-complete (paper §2), but for the small nets used
//! in unit tests and in the paper's worked figures the classic
//! Dreyfus–Wagner dynamic program — `O(3^k·|V| + 2^k·|E| log |V|)` over
//! terminal subsets — is perfectly tractable and provides the optimum
//! against which the heuristics' performance ratios (KMB ≤ 2, ZEL ≤ 11/6)
//! are verified.

use route_graph::heap::IndexedBinaryHeap;
use route_graph::{Graph, GraphError, NodeId, Weight};

use crate::{Net, SteinerError};

/// Hard cap on terminals accepted by [`steiner_cost`]; `3^k` subsets must
/// stay sane.
pub const MAX_EXACT_TERMINALS: usize = 14;

/// Computes the exact minimum Steiner tree cost for `terminals` in `g`.
///
/// Only the optimal *cost* is produced (sufficient for ratio checking); use
/// the heuristics for constructive solutions.
///
/// # Errors
///
/// * [`SteinerError::TooManyTerminals`] beyond [`MAX_EXACT_TERMINALS`];
/// * [`SteinerError::Graph`] for invalid or mutually unreachable terminals.
///
/// # Example
///
/// ```
/// use route_graph::{GridGraph, Weight};
/// use steiner_route::exact::steiner_cost;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let grid = GridGraph::new(5, 5, Weight::UNIT)?;
/// let terminals = [
///     grid.node_at(0, 2)?,
///     grid.node_at(2, 0)?,
///     grid.node_at(2, 4)?,
///     grid.node_at(4, 2)?,
/// ];
/// // The optimal tree is the star through the center: cost 8.
/// assert_eq!(steiner_cost(grid.graph(), &terminals)?, Weight::from_units(8));
/// # Ok(())
/// # }
/// ```
pub fn steiner_cost(g: &Graph, terminals: &[NodeId]) -> Result<Weight, SteinerError> {
    if terminals.is_empty() {
        return Err(SteinerError::EmptyNet);
    }
    if terminals.len() > MAX_EXACT_TERMINALS {
        return Err(SteinerError::TooManyTerminals {
            requested: terminals.len(),
            limit: MAX_EXACT_TERMINALS,
        });
    }
    for &t in terminals {
        g.require_live_node(t)?;
    }
    if terminals.len() == 1 {
        return Ok(Weight::ZERO);
    }
    let n = g.node_count();
    // Root the DP at the last terminal; DP over subsets of the rest.
    let root = *terminals.last().expect("nonempty");
    let rest = &terminals[..terminals.len() - 1];
    let k = rest.len();
    let full = (1usize << k) - 1;
    // dp[mask][v] = min cost of a tree connecting {rest[i] : i ∈ mask} ∪ {v}.
    let mut dp: Vec<Vec<Option<Weight>>> = vec![vec![None; n]; full + 1];
    for (i, &t) in rest.iter().enumerate() {
        // Base case: singleton subsets; relaxation fills in dist(t, v).
        dp[1 << i][t.index()] = Some(Weight::ZERO);
        relax(g, &mut dp[1 << i]);
    }
    for mask in 1..=full {
        if mask.count_ones() < 2 {
            continue;
        }
        // Merge step: dp[mask][v] = min over proper submask splits.
        let mut layer: Vec<Option<Weight>> = vec![None; n];
        let mut sub = (mask - 1) & mask;
        while sub > 0 {
            let other = mask ^ sub;
            if sub < other {
                // Each unordered split visited once.
                sub = (sub - 1) & mask;
                continue;
            }
            for v in 0..n {
                let (Some(a), Some(b)) = (dp[sub][v], dp[other][v]) else {
                    continue;
                };
                let c = a + b;
                if layer[v].is_none_or(|cur| c < cur) {
                    layer[v] = Some(c);
                }
            }
            sub = (sub - 1) & mask;
        }
        // Spread step: Dijkstra-style relaxation over the whole graph.
        relax(g, &mut layer);
        dp[mask] = layer;
    }
    dp[full][root.index()]
        .ok_or_else(|| {
            SteinerError::Graph(GraphError::Disconnected {
                from: root,
                to: rest[0],
            })
        })
}

/// Multi-source Dijkstra: treats every `Some` entry of `layer` as a seed
/// and relaxes to closure under `dist(u, v)`.
fn relax(g: &Graph, layer: &mut [Option<Weight>]) {
    let mut heap = IndexedBinaryHeap::new(layer.len());
    for (i, d) in layer.iter().enumerate() {
        if let Some(d) = d {
            heap.push(i, *d);
        }
    }
    let mut settled = vec![false; layer.len()];
    while let Some((vi, d)) = heap.pop() {
        if settled[vi] {
            continue;
        }
        settled[vi] = true;
        layer[vi] = Some(d);
        for (u, _, w) in g.neighbors(NodeId::from_index(vi)) {
            if settled[u.index()] {
                continue;
            }
            let nd = d.saturating_add(w);
            if layer[u.index()].is_none_or(|cur| nd < cur) {
                heap.push(u.index(), nd);
            }
        }
    }
}

/// Convenience wrapper taking a [`Net`].
///
/// # Errors
///
/// Same conditions as [`steiner_cost`].
pub fn steiner_cost_for_net(g: &Graph, net: &Net) -> Result<Weight, SteinerError> {
    steiner_cost(g, net.terminals())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Kmb, SteinerHeuristic, Zel};
    use route_graph::GridGraph;

    #[test]
    fn two_terminals_is_shortest_path() {
        let grid = GridGraph::new(5, 5, Weight::UNIT).unwrap();
        let cost = steiner_cost(
            grid.graph(),
            &[grid.node_at(0, 0).unwrap(), grid.node_at(3, 4).unwrap()],
        )
        .unwrap();
        assert_eq!(cost, Weight::from_units(7));
    }

    #[test]
    fn plus_instance_has_cost_eight() {
        let grid = GridGraph::new(5, 5, Weight::UNIT).unwrap();
        let t = [
            grid.node_at(0, 2).unwrap(),
            grid.node_at(2, 0).unwrap(),
            grid.node_at(2, 4).unwrap(),
            grid.node_at(4, 2).unwrap(),
        ];
        assert_eq!(
            steiner_cost(grid.graph(), &t).unwrap(),
            Weight::from_units(8)
        );
    }

    #[test]
    fn single_terminal_is_free() {
        let grid = GridGraph::new(3, 3, Weight::UNIT).unwrap();
        assert_eq!(
            steiner_cost(grid.graph(), &[grid.node_at(1, 1).unwrap()]).unwrap(),
            Weight::ZERO
        );
    }

    #[test]
    fn rejects_oversized_and_empty_inputs() {
        let grid = GridGraph::new(6, 6, Weight::UNIT).unwrap();
        let too_many: Vec<NodeId> = grid.graph().node_ids().take(15).collect();
        assert!(matches!(
            steiner_cost(grid.graph(), &too_many),
            Err(SteinerError::TooManyTerminals { .. })
        ));
        assert!(matches!(
            steiner_cost(grid.graph(), &[]),
            Err(SteinerError::EmptyNet)
        ));
    }

    #[test]
    fn disconnection_is_an_error() {
        let g = Graph::with_nodes(2);
        let n: Vec<NodeId> = g.node_ids().collect();
        assert!(matches!(
            steiner_cost(&g, &n),
            Err(SteinerError::Graph(GraphError::Disconnected { .. }))
        ));
    }

    #[test]
    fn kmb_respects_its_performance_bound() {
        
        let mut rng = route_graph::rng::SplitMix64::seed_from_u64(51);
        let grid = GridGraph::new(6, 6, Weight::UNIT).unwrap();
        for trial in 0..10 {
            let pins = route_graph::random::random_net(grid.graph(), 5, &mut rng).unwrap();
            let net = Net::from_terminals(pins).unwrap();
            let opt = steiner_cost_for_net(grid.graph(), &net).unwrap();
            let kmb = Kmb::new().construct(grid.graph(), &net).unwrap();
            // KMB ≤ 2 × OPT (strictly: 2(1 − 1/L), use the looser 2).
            assert!(
                kmb.cost().as_milli() <= 2 * opt.as_milli(),
                "trial {trial}: kmb {} vs opt {}",
                kmb.cost(),
                opt
            );
            assert!(kmb.cost() >= opt);
        }
    }

    #[test]
    fn zel_respects_eleven_sixths() {
        
        let mut rng = route_graph::rng::SplitMix64::seed_from_u64(52);
        let grid = GridGraph::new(6, 6, Weight::UNIT).unwrap();
        for trial in 0..8 {
            let pins = route_graph::random::random_net(grid.graph(), 5, &mut rng).unwrap();
            let net = Net::from_terminals(pins).unwrap();
            let opt = steiner_cost_for_net(grid.graph(), &net).unwrap();
            let zel = Zel::new().construct(grid.graph(), &net).unwrap();
            assert!(
                6 * zel.cost().as_milli() <= 11 * opt.as_milli(),
                "trial {trial}: zel {} vs opt {}",
                zel.cost(),
                opt
            );
            assert!(zel.cost() >= opt);
        }
    }

    #[test]
    fn agrees_with_brute_force_on_random_small_graphs() {
        use route_graph::rng::Rng;
        let mut rng = route_graph::rng::SplitMix64::seed_from_u64(53);
        for _ in 0..6 {
            let n = rng.gen_range(4..8usize);
            let g = route_graph::random::random_connected_graph(n, n + 3, 1..6, &mut rng)
                .unwrap();
            let ids: Vec<NodeId> = g.node_ids().collect();
            let terminals = &ids[..3];
            let dw = steiner_cost(&g, terminals).unwrap();
            // Brute force: try every subset of extra nodes, MST over the
            // induced subgraph restricted to tree edges... simpler: the
            // optimum equals min over all nodes v of the 3-star through v.
            // (For 3 terminals the Steiner topology is always a star
            // through one — possibly terminal — meeting point.)
            let mut best: Option<Weight> = None;
            for &v in &ids {
                let mut total = Weight::ZERO;
                let mut ok = true;
                for &t in terminals {
                    match route_graph::dijkstra::minpath(&g, t, v) {
                        Ok(d) => total += d,
                        Err(_) => {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok && best.is_none_or(|b| total < b) {
                    best = Some(total);
                }
            }
            assert_eq!(Some(dw), best);
        }
    }
}
