//! Property tests over the Steiner/arborescence constructions.
//!
//! Cases are generated from the vendored [`route_graph::rng`] PRNG rather
//! than `proptest` so the suite builds with no network access.

use route_graph::random::{random_connected_graph, random_net};
use route_graph::rng::{Rng, SplitMix64};
use route_graph::{GridGraph, TerminalDistances, Weight};
use steiner_route::heuristic::IteratedBase;
use steiner_route::{
    exact, idom, ikmb, Djka, Dom, Kmb, MehlhornKmb, Net, Pfa, SteinerHeuristic, Zel,
};

const CASES: u64 = 20;

/// Steiner family: cost sandwiched between the exact optimum and twice
/// the optimum.
#[test]
fn steiner_costs_bracket_the_optimum() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let n = rng.gen_range(6..16usize);
        let g = random_connected_graph(n, 2 * n, 1..8, &mut rng).unwrap();
        let pins = random_net(&g, 4.min(n), &mut rng).unwrap();
        let net = Net::from_terminals(pins).unwrap();
        let opt = exact::steiner_cost_for_net(&g, &net).unwrap();
        for algo in [
            Box::new(Kmb::new()) as Box<dyn SteinerHeuristic>,
            Box::new(MehlhornKmb::new()),
            Box::new(Zel::new()),
            Box::new(ikmb()),
        ] {
            let cost = algo.construct(&g, &net).unwrap().cost();
            assert!(cost >= opt, "seed {seed}: {} beat the optimum", algo.name());
            assert!(
                cost.as_milli() <= 2 * opt.as_milli(),
                "seed {seed}: {} broke the 2x bound",
                algo.name()
            );
        }
    }
}

/// Arborescence family: exact shortest-path property on random graphs
/// with zero-weight edges mixed in.
#[test]
fn arborescences_survive_zero_weight_edges() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let zeros = rng.gen_range(0..6usize);
        let mut g = random_connected_graph(12, 24, 1..6, &mut rng).unwrap();
        let edge_count = g.edge_count();
        for _ in 0..zeros {
            let e = route_graph::EdgeId::from_index(rng.gen_range(0..edge_count));
            g.set_weight(e, Weight::ZERO).unwrap();
        }
        let pins = random_net(&g, 4, &mut rng).unwrap();
        let net = Net::from_terminals(pins).unwrap();
        for algo in [
            Box::new(Djka::new()) as Box<dyn SteinerHeuristic>,
            Box::new(Dom::new()),
            Box::new(Pfa::new()),
            Box::new(idom()),
        ] {
            let tree = algo.construct(&g, &net).unwrap();
            assert!(
                tree.is_shortest_paths_tree(&g, &net).unwrap(),
                "seed {seed}: {} violated the SPT property",
                algo.name()
            );
        }
    }
}

/// Pruning is idempotent and never adds cost.
#[test]
fn pruning_is_idempotent() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let grid = GridGraph::new(7, 7, Weight::UNIT).unwrap();
        let pins = random_net(grid.graph(), 5, &mut rng).unwrap();
        let net = Net::from_terminals(pins).unwrap();
        let tree = Kmb::new().construct(grid.graph(), &net).unwrap();
        let once = tree.pruned_to(grid.graph(), net.terminals()).unwrap();
        let twice = once.pruned_to(grid.graph(), net.terminals()).unwrap();
        assert_eq!(once.cost(), twice.cost(), "seed {seed}");
        assert!(once.cost() <= tree.cost(), "seed {seed}");
        assert!(once.spans(&net), "seed {seed}");
    }
}

/// The IteratedBase contract: the screening bound really is an upper
/// bound of the exact cost, for both KMB and DOM.
#[test]
fn screening_upper_bounds_exact_costs() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let grid = GridGraph::new(7, 7, Weight::UNIT).unwrap();
        let pins = random_net(grid.graph(), 5, &mut rng).unwrap();
        let td = TerminalDistances::compute(grid.graph(), &pins).unwrap();
        let candidate = loop {
            let v = route_graph::NodeId::from_index(rng.gen_range(0..49usize));
            if td.index_of(v).is_none() {
                break v;
            }
        };
        for candidate in [None, Some(candidate)] {
            let kmb = Kmb::new();
            assert!(
                kmb.cost_with(grid.graph(), &td, candidate).unwrap()
                    <= kmb.screen_with(grid.graph(), &td, candidate).unwrap(),
                "seed {seed}"
            );
            let dom = Dom::new();
            // DOM's screen defaults to its cheap exact cost — equal.
            assert_eq!(
                dom.cost_with(grid.graph(), &td, candidate).unwrap(),
                dom.screen_with(grid.graph(), &td, candidate).unwrap(),
                "seed {seed}"
            );
        }
    }
}

/// Mehlhorn and classic KMB rarely diverge; when they do, both stay
/// within the same bound envelope.
#[test]
fn mehlhorn_tracks_classic_kmb() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let g = random_connected_graph(14, 30, 1..8, &mut rng).unwrap();
        let pins = random_net(&g, 4, &mut rng).unwrap();
        let net = Net::from_terminals(pins).unwrap();
        let fast = MehlhornKmb::new().construct(&g, &net).unwrap();
        let classic = Kmb::new().construct(&g, &net).unwrap();
        let opt = exact::steiner_cost_for_net(&g, &net).unwrap();
        assert!(fast.cost().as_milli() <= 2 * opt.as_milli(), "seed {seed}");
        assert!(
            classic.cost().as_milli() <= 2 * opt.as_milli(),
            "seed {seed}"
        );
    }
}

#[test]
fn net_api_rejects_degenerate_inputs() {
    use steiner_route::SteinerError;
    let a = route_graph::NodeId::from_index(0);
    assert_eq!(Net::new(a, vec![]).unwrap_err(), SteinerError::EmptyNet);
    assert_eq!(
        Net::new(a, vec![a]).unwrap_err(),
        SteinerError::DuplicatePin(a)
    );
}
