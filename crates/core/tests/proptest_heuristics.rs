//! Property tests over the Steiner/arborescence constructions.

use proptest::prelude::*;
use rand::SeedableRng;

use route_graph::random::{random_connected_graph, random_net};
use route_graph::{GridGraph, TerminalDistances, Weight};
use steiner_route::heuristic::IteratedBase;
use steiner_route::{
    exact, idom, ikmb, Dom, Djka, Kmb, MehlhornKmb, Net, Pfa, SteinerHeuristic, Zel,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Steiner family: cost sandwiched between the exact optimum and twice
    /// the optimum.
    #[test]
    fn steiner_costs_bracket_the_optimum(seed in 0u64..10_000, n in 6usize..16) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let g = random_connected_graph(n, 2 * n, 1..8, &mut rng).unwrap();
        let pins = random_net(&g, 4.min(n), &mut rng).unwrap();
        let net = Net::from_terminals(pins).unwrap();
        let opt = exact::steiner_cost_for_net(&g, &net).unwrap();
        for algo in [
            Box::new(Kmb::new()) as Box<dyn SteinerHeuristic>,
            Box::new(MehlhornKmb::new()),
            Box::new(Zel::new()),
            Box::new(ikmb()),
        ] {
            let cost = algo.construct(&g, &net).unwrap().cost();
            prop_assert!(cost >= opt, "{} beat the optimum", algo.name());
            prop_assert!(
                cost.as_milli() <= 2 * opt.as_milli(),
                "{} broke the 2x bound",
                algo.name()
            );
        }
    }

    /// Arborescence family: exact shortest-path property on random graphs
    /// with zero-weight edges mixed in.
    #[test]
    fn arborescences_survive_zero_weight_edges(seed in 0u64..10_000, zeros in 0usize..6) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut g = random_connected_graph(12, 24, 1..6, &mut rng).unwrap();
        use rand::Rng;
        let edge_count = g.edge_count();
        for _ in 0..zeros {
            let e = route_graph::EdgeId::from_index(rng.gen_range(0..edge_count));
            g.set_weight(e, Weight::ZERO).unwrap();
        }
        let pins = random_net(&g, 4, &mut rng).unwrap();
        let net = Net::from_terminals(pins).unwrap();
        for algo in [
            Box::new(Djka::new()) as Box<dyn SteinerHeuristic>,
            Box::new(Dom::new()),
            Box::new(Pfa::new()),
            Box::new(idom()),
        ] {
            let tree = algo.construct(&g, &net).unwrap();
            prop_assert!(
                tree.is_shortest_paths_tree(&g, &net).unwrap(),
                "{} violated the SPT property",
                algo.name()
            );
        }
    }

    /// Pruning is idempotent and never adds cost.
    #[test]
    fn pruning_is_idempotent(seed in 0u64..10_000) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let grid = GridGraph::new(7, 7, Weight::UNIT).unwrap();
        let pins = random_net(grid.graph(), 5, &mut rng).unwrap();
        let net = Net::from_terminals(pins).unwrap();
        let tree = Kmb::new().construct(grid.graph(), &net).unwrap();
        let once = tree.pruned_to(grid.graph(), net.terminals()).unwrap();
        let twice = once.pruned_to(grid.graph(), net.terminals()).unwrap();
        prop_assert_eq!(once.cost(), twice.cost());
        prop_assert!(once.cost() <= tree.cost());
        prop_assert!(once.spans(&net));
    }

    /// The IteratedBase contract: the screening bound really is an upper
    /// bound of the exact cost, for both KMB and DOM.
    #[test]
    fn screening_upper_bounds_exact_costs(seed in 0u64..10_000) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let grid = GridGraph::new(7, 7, Weight::UNIT).unwrap();
        let pins = random_net(grid.graph(), 5, &mut rng).unwrap();
        let td = TerminalDistances::compute(grid.graph(), &pins).unwrap();
        use rand::Rng;
        let candidate = loop {
            let v = route_graph::NodeId::from_index(rng.gen_range(0..49));
            if td.index_of(v).is_none() {
                break v;
            }
        };
        for candidate in [None, Some(candidate)] {
            let kmb = Kmb::new();
            prop_assert!(
                kmb.cost_with(grid.graph(), &td, candidate).unwrap()
                    <= kmb.screen_with(grid.graph(), &td, candidate).unwrap()
            );
            let dom = Dom::new();
            // DOM's screen defaults to its cheap exact cost — equal.
            prop_assert_eq!(
                dom.cost_with(grid.graph(), &td, candidate).unwrap(),
                dom.screen_with(grid.graph(), &td, candidate).unwrap()
            );
        }
    }

    /// Mehlhorn and classic KMB rarely diverge; when they do, both stay
    /// within the same bound envelope.
    #[test]
    fn mehlhorn_tracks_classic_kmb(seed in 0u64..10_000) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let g = random_connected_graph(14, 30, 1..8, &mut rng).unwrap();
        let pins = random_net(&g, 4, &mut rng).unwrap();
        let net = Net::from_terminals(pins).unwrap();
        let fast = MehlhornKmb::new().construct(&g, &net).unwrap();
        let classic = Kmb::new().construct(&g, &net).unwrap();
        let opt = exact::steiner_cost_for_net(&g, &net).unwrap();
        prop_assert!(fast.cost().as_milli() <= 2 * opt.as_milli());
        prop_assert!(classic.cost().as_milli() <= 2 * opt.as_milli());
    }
}

#[test]
fn net_api_rejects_degenerate_inputs() {
    use steiner_route::SteinerError;
    let a = route_graph::NodeId::from_index(0);
    assert_eq!(Net::new(a, vec![]).unwrap_err(), SteinerError::EmptyNet);
    assert_eq!(
        Net::new(a, vec![a]).unwrap_err(),
        SteinerError::DuplicatePin(a)
    );
}
