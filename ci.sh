#!/usr/bin/env bash
# Local CI gate: the tier-1 verification plus lint and a telemetry smoke
# test. Run before every PR.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -p fpga-lint -q (linter self-tests incl. adversarial gate)"
cargo test -p fpga-lint -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> fpga_lint: workspace invariants (cone-scoped, JSON report)"
# Aux-path waiver budgets: bench harnesses time phases with Instant and
# report float percentages by design; the budget keeps that bounded
# instead of demanding a waiver comment in every bench body.
cargo build --release -p fpga-lint
lint_json="$(mktemp /tmp/fpga_lint_report.XXXXXX.json)"
lint_status=0
./target/release/fpga_lint --root . --json \
    --waiver-budget determinism-wall-clock=8 \
    --waiver-budget determinism-float-weight=2 \
    > "$lint_json" || lint_status=$?
python3 - "$lint_json" <<'PY'
import json, sys

report = json.load(open(sys.argv[1]))
cone = report["cone"]
print(f"hot-path cone: {cone['functions']} function(s) across {cone['files']} file(s)")
for entry in cone["entries"]:
    reach = entry["reachable"]
    print(f"  {entry['entry']}: {'MISSING' if reach is None else reach}")
if report["summary"]:
    print("per-rule violations:")
    for rule, n in sorted(report["summary"].items()):
        print(f"  {rule}: {n}")
for d in report["diagnostics"]:
    if not d["budget_waived"]:
        print(f"  {d['code']} {d['path']}:{d['line']}: {d['message']}")
PY
rm -f "$lint_json"
if [ "$lint_status" -ne 0 ]; then
    echo "fpga_lint found violations (exit $lint_status)" >&2
    exit 1
fi

echo "==> fpga_lint: failure-mode smoke (bad file must exit nonzero)"
bad_file="$(mktemp /tmp/fpga_lint_bad.XXXXXX.rs)"
trap 'rm -f "$bad_file"' EXIT
printf 'pub fn f(v: &[u32]) -> u32 { v.first().copied().unwrap() }\n' > "$bad_file"
lint_status=0
./target/release/fpga_lint --check-file "$bad_file" --as crates/fpga/src/router.rs || lint_status=$?
if [ "$lint_status" -ne 1 ]; then
    echo "fpga_lint must exit 1 on a known-bad file (got $lint_status)" >&2
    exit 1
fi

echo "==> fpga_lint: determinism smoke (seeded hash-iter fixture must exit nonzero)"
lint_status=0
./target/release/fpga_lint \
    --check-file crates/lint/tests/fixtures/det_hash_iter.rs \
    --as crates/fpga/src/det_hash_iter.rs || lint_status=$?
if [ "$lint_status" -ne 1 ]; then
    echo "fpga_lint must exit 1 on the determinism fixture (got $lint_status)" >&2
    exit 1
fi

echo "==> telemetry smoke: width --threads 0 --trace --stream"
trace_file="$(mktemp /tmp/fpga_route_trace.XXXXXX.jsonl)"
trap 'rm -f "$trace_file" "$bad_file"' EXIT
./target/release/fpga_route width --circuit term1 --arch 4000 \
    --threads 0 --trace "$trace_file" --stream --metrics
./target/release/fpga_route trace-check "$trace_file"
grep -q '"mode":"stream"' "$trace_file"
grep -q '"type":"span"' "$trace_file"
grep -q '"kind":"pass"' "$trace_file"
grep -q '"name":"dijkstra_runs"' "$trace_file"

echo "==> pathfinder smoke: route --mode pathfinder --trace --stream"
pf_trace="$(mktemp /tmp/fpga_route_pf.XXXXXX.jsonl)"
trap 'rm -f "$trace_file" "$bad_file" "$pf_trace"' EXIT
./target/release/fpga_route route --circuit term1 --arch 4000 --width 10 \
    --mode pathfinder --threads 2 --trace "$pf_trace" --stream --metrics
./target/release/fpga_route trace-check "$pf_trace"
grep -q '"kind":"pass"' "$pf_trace"
grep -q '"name":"pathfinder_iterations"' "$pf_trace"
grep -q '"type":"histogram"' "$pf_trace"
grep -q '"type":"gauge"' "$pf_trace"
grep -q '"type":"profile"' "$pf_trace"
grep -q '"type":"convergence"' "$pf_trace"
grep -q '"type":"timeline"' "$pf_trace"

echo "==> trace-report renders the pathfinder smoke trace"
./target/release/fpga_route trace-report "$pf_trace"

echo "==> selective pathfinder smoke: route --pf-selective --trace --stream"
sel_trace="$(mktemp /tmp/fpga_route_sel.XXXXXX.jsonl)"
trap 'rm -f "$trace_file" "$bad_file" "$pf_trace" "$sel_trace"' EXIT
./target/release/fpga_route route --circuit term1 --arch 4000 --width 10 \
    --mode pathfinder --pf-selective --threads 2 --trace "$sel_trace" --stream --metrics
./target/release/fpga_route trace-check "$sel_trace"
grep -q '"dirty_nets"' "$sel_trace"
grep -q '"name":"pathfinder_dirty_nets"' "$sel_trace"
grep -q '"name":"pathfinder_skipped_nets"' "$sel_trace"
grep -q '"name":"pathfinder_repriced_edges"' "$sel_trace"

echo "==> bench-diff self-check (identical snapshots must pass the gate)"
./target/release/fpga_route bench-diff BENCH_pathfinder.json BENCH_pathfinder.json --threshold 5

echo "==> pathfinder bench smoke (release, BENCH_QUICK)"
BENCH_QUICK=1 cargo bench -p bench --bench pathfinder

echo "==> bench-diff perf gate (checked-in baseline vs fresh run, warn-only)"
fresh_bench="$(mktemp /tmp/fpga_bench_fresh.XXXXXX.json)"
trap 'rm -f "$trace_file" "$bad_file" "$pf_trace" "$sel_trace" "$fresh_bench"' EXIT
cp BENCH_pathfinder.json "$fresh_bench"
git checkout -- BENCH_pathfinder.json 2>/dev/null || true
./target/release/fpga_route bench-diff BENCH_pathfinder.json "$fresh_bench" \
    --threshold 25 --warn-only

echo "==> kernel bench + bench-diff perf gate (hard fail, retried)"
# The kernel bench runs full reps (it takes under a second) so the
# comparison matches the checked-in baseline's rep count. Sub-ms
# medians on this shared container can transiently blow out several
# hundred percent when a CPU slice lands mid-bench, so the gate is
# hard but retried: a transient spike passes on a later attempt, a
# real regression fails all three. The 60% threshold absorbs steady
# cross-session drift while still catching integer-factor slowdowns;
# the bench's own A*+CSR >= 1.3x assertion is retried with it.
fresh_kernel="$(mktemp /tmp/fpga_bench_kernel.XXXXXX.json)"
trap 'rm -f "$trace_file" "$bad_file" "$pf_trace" "$sel_trace" "$fresh_bench" "$fresh_kernel"' EXIT
kernel_gate_ok=0
for attempt in 1 2 3; do
    if cargo bench -p bench --bench kernel \
        && cp BENCH_kernel.json "$fresh_kernel" \
        && { git checkout -- BENCH_kernel.json 2>/dev/null || true; } \
        && ./target/release/fpga_route bench-diff BENCH_kernel.json "$fresh_kernel" \
            --threshold 60; then
        kernel_gate_ok=1
        break
    fi
    echo "kernel perf gate attempt ${attempt}/3 regressed; settling before retry" >&2
    sleep 5
done
if [ "$kernel_gate_ok" -ne 1 ]; then
    echo "kernel perf gate failed on all 3 attempts" >&2
    exit 1
fi

echo "==> snapshot bench smoke (release, BENCH_QUICK)"
BENCH_QUICK=1 cargo bench -p bench --bench snapshot

echo "==> scheduler bench smoke (release, BENCH_QUICK)"
BENCH_QUICK=1 cargo bench -p bench --bench sched

echo "==> ci.sh: all green"
