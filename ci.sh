#!/usr/bin/env bash
# Local CI gate: the tier-1 verification plus lint. Run before every PR.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> ci.sh: all green"
