#!/usr/bin/env bash
# Local CI gate: the tier-1 verification plus lint and a telemetry smoke
# test. Run before every PR.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> telemetry smoke: width --threads 0 --trace --stream"
trace_file="$(mktemp /tmp/fpga_route_trace.XXXXXX.jsonl)"
trap 'rm -f "$trace_file"' EXIT
./target/release/fpga_route width --circuit term1 --arch 4000 \
    --threads 0 --trace "$trace_file" --stream --metrics
./target/release/fpga_route trace-check "$trace_file"
grep -q '"mode":"stream"' "$trace_file"
grep -q '"type":"span"' "$trace_file"
grep -q '"kind":"pass"' "$trace_file"
grep -q '"name":"dijkstra_runs"' "$trace_file"

echo "==> snapshot bench smoke (release, BENCH_QUICK)"
BENCH_QUICK=1 cargo bench -p bench --bench snapshot

echo "==> scheduler bench smoke (release, BENCH_QUICK)"
BENCH_QUICK=1 cargo bench -p bench --bench sched

echo "==> ci.sh: all green"
