//! Read-set restriction: every construction the FPGA router deploys must
//! record a *bounded* read set when handed an explicit candidate pool —
//! strictly smaller than the live graph — or parallel speculation
//! degrades to sequential replay on every batch (any batch-mate's commit
//! would intersect a whole-graph read set).
//!
//! The grid is seeded with congestion-style weight noise so shortest
//! paths are not axis-aligned ties: a construction that secretly floods
//! the whole component to break ties would be caught here.

use fpga_route::graph::rng::{Rng, SplitMix64};
use fpga_route::graph::{readset, GridGraph, NodeId, Weight};
use fpga_route::steiner::{
    idom_with_config, CandidatePool, Djka, Dom, Iterated, IteratedConfig, Kmb, Net,
    SteinerHeuristic, Zel,
};
use fpga_route::steiner::Pfa;

// The chip must be comfortably larger than the candidate pool: a
// target-restricted Dijkstra stops once the *last* pool target settles,
// so it examines everything within that distance of its start — a
// diamond about twice the pool's diameter in the worst case. On a chip
// barely bigger than that diamond the union of reads across an iterated
// construction's rounds covers every node and the strict-subset
// assertion would flag a correctly restricted run.
const ROWS: usize = 28;
const COLS: usize = 28;

/// A 28×28 grid with seeded congestion noise: every edge gets
/// `1.0 + U(0, 0.4)` units so distances are irregular like a mid-pass
/// routing graph.
fn congested_grid() -> GridGraph {
    let mut grid = GridGraph::new(ROWS, COLS, Weight::UNIT).unwrap();
    let mut rng = SplitMix64::seed_from_u64(1995);
    let edges: Vec<_> = grid.graph().edge_ids().collect();
    for e in edges {
        let noise = rng.gen_range(0..400u64);
        grid.graph_mut()
            .set_weight(e, Weight::from_milli(1000 + noise))
            .unwrap();
    }
    grid
}

/// A corner net whose terminals all sit inside rows/cols `2..=8`.
fn corner_net(grid: &GridGraph) -> Net {
    Net::new(
        grid.node_at(2, 2).unwrap(),
        vec![
            grid.node_at(8, 5).unwrap(),
            grid.node_at(5, 8).unwrap(),
            grid.node_at(8, 8).unwrap(),
        ],
    )
    .unwrap()
}

/// The explicit candidate pool: every node of the net's bounding box
/// expanded by a 2-block margin (rows/cols `0..=10`) — the same shape
/// the router's `candidate_pool` produces from a net's footprint.
fn region_pool(grid: &GridGraph) -> Vec<NodeId> {
    let mut pool = Vec::new();
    for r in 0..=10 {
        for c in 0..=10 {
            pool.push(grid.node_at(r, c).unwrap());
        }
    }
    pool
}

/// Runs one construction under the read-set recorder and asserts its
/// reads are non-empty and a strict subset of the live graph.
fn assert_bounded_reads(h: &dyn SteinerHeuristic, grid: &GridGraph, net: &Net) {
    let g = grid.graph();
    readset::begin();
    let tree = h.construct(g, net).unwrap();
    let reads = readset::take();
    assert!(tree.spans(net), "{}: tree must span the net", h.name());
    assert!(!reads.is_empty(), "{}: reads recorded", h.name());
    assert!(
        reads.len() < g.live_node_count(),
        "{}: read set ({} nodes) must be a strict subset of the live graph ({} nodes)",
        h.name(),
        reads.len(),
        g.live_node_count()
    );
    // The far corner is well outside the restricted target set; no
    // bounded construction has any business examining it.
    let far = grid.node_at(ROWS - 1, COLS - 1).unwrap();
    assert!(
        !reads.contains(&far),
        "{}: read the far corner of the chip",
        h.name()
    );
}

#[test]
fn every_pooled_construction_records_a_restricted_read_set() {
    let grid = congested_grid();
    let net = corner_net(&grid);
    let pool = region_pool(&grid);
    let config = IteratedConfig {
        pool: CandidatePool::Explicit(pool.clone()),
        ..IteratedConfig::default()
    };
    let heuristics: Vec<Box<dyn SteinerHeuristic>> = vec![
        Box::new(Kmb::new()),
        Box::new(Zel::with_pool(CandidatePool::Explicit(pool.clone()))),
        Box::new(Pfa::with_pool(CandidatePool::Explicit(pool.clone()))),
        Box::new(Dom::new()),
        Box::new(Djka::new()),
        Box::new(Iterated::with_config(Kmb::new(), config.clone())),
        Box::new(Iterated::with_config(
            Zel::with_pool(CandidatePool::Explicit(pool.clone())),
            config.clone(),
        )),
        Box::new(idom_with_config(config)),
    ];
    for h in &heuristics {
        assert_bounded_reads(h.as_ref(), &grid, &net);
    }
}

#[test]
fn restricted_zel_and_pfa_still_match_their_unrestricted_trees() {
    // Restricting the scan to a pool that contains everything the
    // unrestricted scan would have chosen must not change the result:
    // here the pool covers the whole grid, so restricted and
    // unrestricted runs see identical candidate sets.
    let grid = congested_grid();
    let net = corner_net(&grid);
    let all: Vec<NodeId> = grid.graph().node_ids().collect();
    let zel_full = Zel::new().construct(grid.graph(), &net).unwrap();
    let zel_pool = Zel::with_pool(CandidatePool::Explicit(all.clone()))
        .construct(grid.graph(), &net)
        .unwrap();
    assert_eq!(zel_full.cost(), zel_pool.cost());
    let pfa_full = Pfa::new().construct(grid.graph(), &net).unwrap();
    let pfa_pool = Pfa::with_pool(CandidatePool::Explicit(all))
        .construct(grid.graph(), &net)
        .unwrap();
    assert_eq!(pfa_full.cost(), pfa_pool.cost());
}

/// The same invariant on a real chip instead of a synthetic grid: a
/// synthesized Table 5 circuit (alu4, 19×17) on its XC4000 segment
/// graph. ZEL and PFA get the router's explicit region pool (net
/// bounding box plus the default candidate margin, exactly the
/// footprint `Router::region_nodes` computes); DOM and DJKA run bare —
/// they are target-restricted by construction. Every one must record a
/// read set strictly smaller than the full node set, or parallel
/// speculation on this chip would serialize.
#[test]
fn table5_constructions_record_restricted_read_sets() {
    use fpga_route::fpga::synth::{synthesize, xc4000_profiles};
    use fpga_route::fpga::{ArchSpec, Device};

    let profile = xc4000_profiles()[0]; // alu4: 19×17, the Table 5 flagship
    let circuit = synthesize(&profile, 2, 1995).unwrap();
    let device = Device::new(ArchSpec::xilinx4000(profile.rows, profile.cols, 9)).unwrap();
    let arch = device.arch();
    let g = device.graph();

    // A compact multi-terminal net: at least three pins whose bounding
    // box spans no more than a third of the chip, so the pool's Dijkstra
    // diamond cannot flood the whole graph (see the ROWS/COLS comment
    // above for why that headroom matters).
    let mut picked = None;
    for (ni, net) in circuit.nets().iter().enumerate() {
        if net.pins.len() < 3 {
            continue;
        }
        let rows: Vec<usize> = net.pins.iter().map(|p| p.row).collect();
        let cols: Vec<usize> = net.pins.iter().map(|p| p.col).collect();
        let (r0, r1) = (*rows.iter().min().unwrap(), *rows.iter().max().unwrap());
        let (c0, c1) = (*cols.iter().min().unwrap(), *cols.iter().max().unwrap());
        if r1 - r0 <= arch.rows / 3 && c1 - c0 <= arch.cols / 3 {
            picked = Some((ni, r0, r1, c0, c1));
            break;
        }
    }
    let (ni, r0, r1, c0, c1) = picked.expect("alu4 has a compact multi-terminal net");

    // The router's region pool for this net: bounding box expanded by
    // the default candidate margin, mapped to segment positions the same
    // way `Router::region_nodes` does.
    let margin = 1;
    let r0 = r0.saturating_sub(margin);
    let c0 = c0.saturating_sub(margin);
    let r1 = (r1 + margin).min(arch.rows - 1);
    let c1 = (c1 + margin).min(arch.cols - 1);
    let h_positions = (arch.rows + 1) * arch.cols;
    let mut pool: Vec<NodeId> = Vec::new();
    for ch in r0..=(r1 + 1) {
        for seg in c0..=c1 {
            pool.extend(device.segment_nodes_at(ch * arch.cols + seg));
        }
    }
    for ch in c0..=(c1 + 1) {
        for seg in r0..=r1 {
            pool.extend(device.segment_nodes_at(h_positions + ch * arch.rows + seg));
        }
    }

    // Two pins of a net can land on the same segment node; Net rejects
    // duplicate terminals, so dedup first.
    let mut terminals = circuit.net_terminals(&device, ni).unwrap();
    let mut seen = std::collections::HashSet::new();
    terminals.retain(|t| seen.insert(*t));
    assert!(terminals.len() >= 2, "net must keep at least two terminals");
    let net = Net::from_terminals(terminals).unwrap();

    let heuristics: Vec<Box<dyn SteinerHeuristic>> = vec![
        Box::new(Zel::with_pool(CandidatePool::Explicit(pool.clone()))),
        Box::new(Pfa::with_pool(CandidatePool::Explicit(pool))),
        Box::new(Dom::new()),
        Box::new(Djka::new()),
    ];
    for h in &heuristics {
        readset::begin();
        let tree = h.construct(g, &net).unwrap();
        let reads = readset::take();
        assert!(tree.spans(&net), "{}: tree must span the net", h.name());
        assert!(!reads.is_empty(), "{}: reads recorded", h.name());
        assert!(
            reads.len() < g.live_node_count(),
            "{}: read set ({} nodes) must be a strict subset of the chip graph ({} nodes)",
            h.name(),
            reads.len(),
            g.live_node_count()
        );
    }
}

#[test]
fn unrestricted_scans_read_more_than_pooled_scans() {
    // Sanity check on the measurement itself: the same construction
    // without a pool floods far more of the graph.
    let grid = congested_grid();
    let net = corner_net(&grid);
    let pool = region_pool(&grid);

    readset::begin();
    Zel::new().construct(grid.graph(), &net).unwrap();
    let unrestricted = readset::take();

    readset::begin();
    Zel::with_pool(CandidatePool::Explicit(pool))
        .construct(grid.graph(), &net)
        .unwrap();
    let restricted = readset::take();

    assert!(
        restricted.len() < unrestricted.len(),
        "pooled ZEL read {} nodes, unrestricted {}",
        restricted.len(),
        unrestricted.len()
    );
    assert_eq!(
        unrestricted.len(),
        grid.graph().live_node_count(),
        "unrestricted ZEL floods the whole component"
    );
}
