//! Integration tests for the observability suite.
//!
//! The suite's contract has two halves. First, observation must not
//! perturb: installing a trace collector changes nothing about a
//! routing result — same trees, same wirelength, same pass count — for
//! either routing mode and either scheduler. Second, observation must
//! be complete: a traced parallel run emits every record type the suite
//! defines (histograms, gauges, profile, convergence, timelines), all
//! of it valid under `trace-check`'s record validator and renderable by
//! `trace-report`.

use fpga_route::fpga::synth::{synthesize, CircuitProfile};
use fpga_route::fpga::{
    ArchSpec, Circuit, Device, RouteMode, RouteOutcome, Router, RouterConfig, SchedulerKind,
};
use fpga_route::trace::check::RecordCheck;
use fpga_route::trace::report::render_report;
use fpga_route::trace::{Collector, JsonlSink, TraceSink};

/// Collector state is process-global; serialize the tests so one
/// test's "uninstrumented" baseline never runs under another's
/// collector.
fn serial() -> std::sync::MutexGuard<'static, ()> {
    static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
    GATE.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A small synthetic profile: enough nets to contend, fast to route.
fn tiny_profile() -> CircuitProfile {
    CircuitProfile {
        name: "tiny",
        rows: 5,
        cols: 5,
        nets_2_3: 8,
        nets_4_10: 3,
        nets_over_10: 0,
    }
}

fn tiny_circuit() -> Circuit {
    synthesize(&tiny_profile(), 2, 1995).expect("synthesizable")
}

fn tiny_device(width: usize) -> Device {
    let profile = tiny_profile();
    Device::new(ArchSpec::xilinx4000(profile.rows, profile.cols, width)).unwrap()
}

fn route(device: &Device, config: RouterConfig) -> RouteOutcome {
    Router::new(device, config)
        .route(&tiny_circuit())
        .expect("tiny circuit routes at a generous width")
}

fn config(mode: RouteMode, scheduler: SchedulerKind, threads: usize) -> RouterConfig {
    RouterConfig {
        mode,
        scheduler,
        threads,
        ..RouterConfig::default()
    }
}

fn assert_identical(bare: &RouteOutcome, traced: &RouteOutcome, context: &str) {
    assert_eq!(traced.trees, bare.trees, "{context}: trees diverged");
    assert_eq!(traced.passes, bare.passes, "{context}: pass count diverged");
    assert_eq!(
        traced.total_wirelength, bare.total_wirelength,
        "{context}: wirelength diverged"
    );
}

#[test]
fn instrumentation_does_not_perturb_routing_results() {
    let _gate = serial();
    let device = tiny_device(8);
    for (mode, scheduler, threads) in [
        (RouteMode::RipUp, SchedulerKind::Wavefront, 2),
        (RouteMode::RipUp, SchedulerKind::Batch, 2),
        (RouteMode::Pathfinder, SchedulerKind::Wavefront, 2),
        (RouteMode::Pathfinder, SchedulerKind::Batch, 2),
        (RouteMode::Pathfinder, SchedulerKind::Wavefront, 0),
    ] {
        let bare = route(&device, config(mode, scheduler, threads));
        let collector = Collector::install();
        let traced = route(&device, config(mode, scheduler, threads));
        let trace = collector.finish();
        let context = format!("{mode:?}/{}/threads {threads}", scheduler.name());
        assert_identical(&bare, &traced, &context);
        assert!(
            trace.summary().contains("telemetry summary"),
            "{context}: collector captured nothing"
        );
    }
}

/// Routes under a collector and returns the trace as JSONL.
fn traced_jsonl(device: &Device, config: RouterConfig) -> String {
    let collector = Collector::install();
    let _ = route(device, config);
    let trace = collector.finish();
    let mut buf = Vec::new();
    JsonlSink.emit(&trace, &mut buf).unwrap();
    String::from_utf8(buf).unwrap()
}

#[test]
fn traced_pathfinder_run_emits_every_observability_record_type() {
    let _gate = serial();
    let device = tiny_device(8);
    let jsonl = traced_jsonl(
        &device,
        config(RouteMode::Pathfinder, SchedulerKind::Wavefront, 2),
    );
    for record_type in ["histogram", "gauge", "profile", "convergence", "timeline"] {
        assert!(
            jsonl.contains(&format!("\"type\":\"{record_type}\"")),
            "trace is missing {record_type} records:\n{jsonl}"
        );
    }
    // Specific surfaces: per-net and per-iteration histograms, the
    // pathfinder gauge, and a per-worker timeline with a role.
    for needle in [
        "\"name\":\"net_route_ns\"",
        "\"name\":\"pf_iteration_ns\"",
        "\"name\":\"peak_overcapacity_nodes\"",
        "\"role\":\"pf-worker\"",
    ] {
        assert!(jsonl.contains(needle), "trace is missing {needle}");
    }

    let mut check = RecordCheck::new();
    for line in jsonl.lines() {
        check.line(line).unwrap_or_else(|e| {
            panic!("trace-check rejected an emitted record: {e}\nline: {line}")
        });
    }

    let report = render_report(&jsonl).expect("trace-report renders the emitted trace");
    for section in [
        "latency histograms",
        "pathfinder convergence",
        "scheduler timelines",
        "wall-clock profile",
    ] {
        assert!(report.contains(section), "report lacks {section}:\n{report}");
    }
}

#[test]
fn traced_ripup_wavefront_run_emits_worker_timelines() {
    let _gate = serial();
    let device = tiny_device(8);
    let jsonl = traced_jsonl(&device, config(RouteMode::RipUp, SchedulerKind::Wavefront, 2));
    for needle in [
        "\"type\":\"timeline\"",
        "\"role\":\"committer\"",
        "\"name\":\"sched_workers\"",
        "\"name\":\"commit_apply_ns\"",
    ] {
        assert!(jsonl.contains(needle), "trace is missing {needle}:\n{jsonl}");
    }
    let mut check = RecordCheck::new();
    for line in jsonl.lines() {
        check.line(line).expect("every emitted record validates");
    }
}
