//! Cross-crate integration tests: every construction, driven uniformly
//! over randomized workloads, upholding the paper's structural claims.

use fpga_route::graph::rng::Rng;

use fpga_route::graph::random::{random_connected_graph, random_net};
use fpga_route::graph::{GridGraph, Weight};
use fpga_route::steiner::metrics::optimal_max_pathlength;
use fpga_route::steiner::{
    exact, idom, ikmb, izel, Djka, Dom, Kmb, Net, Pfa, SteinerHeuristic, Zel,
};

fn full_roster() -> Vec<(&'static str, Box<dyn SteinerHeuristic>)> {
    vec![
        ("KMB", Box::new(Kmb::new())),
        ("ZEL", Box::new(Zel::new())),
        ("IKMB", Box::new(ikmb())),
        ("IZEL", Box::new(izel())),
        ("DJKA", Box::new(Djka::new())),
        ("DOM", Box::new(Dom::new())),
        ("PFA", Box::new(Pfa::new())),
        ("IDOM", Box::new(idom())),
    ]
}

#[test]
fn every_algorithm_spans_random_weighted_graphs() {
    let mut rng = fpga_route::graph::rng::SplitMix64::seed_from_u64(100);
    for trial in 0..15 {
        let n = rng.gen_range(8..30usize);
        let m = rng.gen_range(n..3 * n);
        let g = random_connected_graph(n, m, 1..10, &mut rng).unwrap();
        let pins = random_net(&g, rng.gen_range(2..6usize).min(n), &mut rng).unwrap();
        let net = Net::from_terminals(pins).unwrap();
        for (name, algo) in full_roster() {
            let tree = algo
                .construct(&g, &net)
                .unwrap_or_else(|e| panic!("trial {trial} {name}: {e}"));
            assert!(tree.spans(&net), "trial {trial} {name} does not span");
        }
    }
}

#[test]
fn arborescence_family_always_has_optimal_radius() {
    let mut rng = fpga_route::graph::rng::SplitMix64::seed_from_u64(101);
    for trial in 0..15 {
        let n = rng.gen_range(8..30usize);
        let m = rng.gen_range(n..3 * n);
        let g = random_connected_graph(n, m, 1..10, &mut rng).unwrap();
        let pins = random_net(&g, rng.gen_range(3..6usize).min(n), &mut rng).unwrap();
        let net = Net::from_terminals(pins).unwrap();
        for (name, algo) in [
            ("DJKA", Box::new(Djka::new()) as Box<dyn SteinerHeuristic>),
            ("DOM", Box::new(Dom::new())),
            ("PFA", Box::new(Pfa::new())),
            ("IDOM", Box::new(idom())),
        ] {
            let tree = algo.construct(&g, &net).unwrap();
            assert!(
                tree.is_shortest_paths_tree(&g, &net).unwrap(),
                "trial {trial}: {name} violated the shortest-paths property"
            );
        }
    }
}

#[test]
fn iterated_constructions_never_lose_to_their_bases() {
    let mut rng = fpga_route::graph::rng::SplitMix64::seed_from_u64(102);
    for _ in 0..10 {
        let grid = GridGraph::new(8, 8, Weight::UNIT).unwrap();
        let pins = random_net(grid.graph(), 5, &mut rng).unwrap();
        let net = Net::from_terminals(pins).unwrap();
        let g = grid.graph();
        assert!(ikmb().construct(g, &net).unwrap().cost() <= Kmb::new().construct(g, &net).unwrap().cost());
        assert!(izel().construct(g, &net).unwrap().cost() <= Zel::new().construct(g, &net).unwrap().cost());
        assert!(idom().construct(g, &net).unwrap().cost() <= Dom::new().construct(g, &net).unwrap().cost());
    }
}

#[test]
fn performance_bounds_hold_against_the_exact_optimum() {
    let mut rng = fpga_route::graph::rng::SplitMix64::seed_from_u64(103);
    for _ in 0..8 {
        let n = rng.gen_range(8..20usize);
        let m = rng.gen_range(n..2 * n + 5);
        let g = random_connected_graph(n, m, 1..8, &mut rng).unwrap();
        let pins = random_net(&g, 4, &mut rng).unwrap();
        let net = Net::from_terminals(pins).unwrap();
        let opt = exact::steiner_cost_for_net(&g, &net).unwrap();
        // KMB ≤ 2·opt, ZEL/IZEL/IKMB ≤ 11/6·opt ≤ 2·opt, and all ≥ opt.
        for (name, algo) in [
            ("KMB", Box::new(Kmb::new()) as Box<dyn SteinerHeuristic>),
            ("ZEL", Box::new(Zel::new())),
            ("IKMB", Box::new(ikmb())),
            ("IZEL", Box::new(izel())),
        ] {
            let cost = algo.construct(&g, &net).unwrap().cost();
            assert!(cost >= opt, "{name} beat the optimum?!");
            assert!(
                cost.as_milli() <= 2 * opt.as_milli(),
                "{name} broke its performance bound: {cost} vs opt {opt}"
            );
        }
        // ZEL's stronger 11/6 bound.
        let zel = Zel::new().construct(&g, &net).unwrap().cost();
        assert!(6 * zel.as_milli() <= 11 * opt.as_milli());
    }
}

#[test]
fn steiner_trees_trade_radius_for_wire_and_arborescences_do_the_reverse() {
    // Aggregate Table-1-style shape check on uncongested grids: the
    // Steiner family uses at most as much wire as the arborescence family,
    // while only the arborescence family guarantees the optimal radius.
    let mut rng = fpga_route::graph::rng::SplitMix64::seed_from_u64(104);
    let mut steiner_wire = 0u64;
    let mut arbor_wire = 0u64;
    for _ in 0..12 {
        let grid = GridGraph::new(10, 10, Weight::UNIT).unwrap();
        let pins = random_net(grid.graph(), 6, &mut rng).unwrap();
        let net = Net::from_terminals(pins).unwrap();
        let ik = ikmb().construct(grid.graph(), &net).unwrap();
        let id = idom().construct(grid.graph(), &net).unwrap();
        steiner_wire += ik.cost().as_milli();
        arbor_wire += id.cost().as_milli();
        let opt_radius = optimal_max_pathlength(grid.graph(), &net).unwrap();
        assert_eq!(id.max_pathlength(&net).unwrap(), opt_radius);
        assert!(ik.max_pathlength(&net).unwrap() >= opt_radius);
    }
    assert!(steiner_wire <= arbor_wire);
}

#[test]
fn identical_inputs_give_identical_outputs() {
    // Determinism across runs: the whole pipeline is seeded and
    // tie-breaking is explicit.
    let grid = GridGraph::new(9, 9, Weight::UNIT).unwrap();
    let mut rng1 = fpga_route::graph::rng::SplitMix64::seed_from_u64(105);
    let mut rng2 = fpga_route::graph::rng::SplitMix64::seed_from_u64(105);
    let pins1 = random_net(grid.graph(), 5, &mut rng1).unwrap();
    let pins2 = random_net(grid.graph(), 5, &mut rng2).unwrap();
    assert_eq!(pins1, pins2);
    let net = Net::from_terminals(pins1).unwrap();
    for (_, algo) in full_roster() {
        let a = algo.construct(grid.graph(), &net).unwrap();
        let b = algo.construct(grid.graph(), &net).unwrap();
        assert_eq!(a.cost(), b.cost());
        assert_eq!(a.edges(), b.edges());
    }
}
