//! End-to-end router integration: synthetic circuits through the full
//! device model, across algorithms and architectures.

use fpga_route::fpga::synth::{synthesize, CircuitProfile};
use fpga_route::fpga::width::{minimum_channel_width, WidthSearch};
use fpga_route::fpga::{
    ArchSpec, BaselineConfig, BaselineRouter, Device, FpgaError, RouteAlgorithm, Router,
    RouterConfig,
};
use fpga_route::steiner::Net;

fn test_profile() -> CircuitProfile {
    CircuitProfile {
        name: "itest",
        rows: 6,
        cols: 6,
        nets_2_3: 14,
        nets_4_10: 4,
        nets_over_10: 1,
    }
}

#[test]
fn full_circuit_routes_on_both_architectures() {
    let profile = test_profile();
    let circuit = synthesize(&profile, 2, 9).unwrap();
    for arch in [
        ArchSpec::xilinx3000(6, 6, 10),
        ArchSpec::xilinx4000(6, 6, 10),
    ] {
        let device = Device::new(arch).unwrap();
        let outcome = Router::new(&device, RouterConfig::default())
            .route(&circuit)
            .unwrap();
        assert_eq!(outcome.trees.len(), circuit.net_count());
        // Every net spans, every tree's resources are exclusive.
        let mut seen = std::collections::HashSet::new();
        for (ni, tree) in outcome.trees.iter().enumerate() {
            let net = Net::from_terminals(circuit.net_terminals(&device, ni).unwrap()).unwrap();
            assert!(tree.spans(&net), "net {ni}");
            for v in tree.nodes() {
                assert!(seen.insert(v), "resource {v} shared");
            }
        }
    }
}

#[test]
fn arborescence_router_yields_optimal_radii_on_the_virgin_device() {
    // With a wide, uncongested device the first nets routed see the full
    // graph, so IDOM's trees must hit the exact graph radius. Verify on
    // the first-routed (largest) net by re-running the router with a
    // single net.
    let profile = CircuitProfile {
        name: "one",
        rows: 5,
        cols: 5,
        nets_2_3: 0,
        nets_4_10: 1,
        nets_over_10: 0,
    };
    let circuit = synthesize(&profile, 2, 4).unwrap();
    let device = Device::new(ArchSpec::xilinx4000(5, 5, 8)).unwrap();
    let outcome = Router::new(
        &device,
        RouterConfig::with_algorithm(RouteAlgorithm::Idom),
    )
    .route(&circuit)
    .unwrap();
    let net = Net::from_terminals(circuit.net_terminals(&device, 0).unwrap()).unwrap();
    assert!(outcome.trees[0]
        .is_shortest_paths_tree(device.graph(), &net)
        .unwrap());
}

#[test]
fn width_search_is_consistent_between_strategies() {
    let profile = test_profile();
    let circuit = synthesize(&profile, 2, 9).unwrap();
    let base = ArchSpec::xilinx4000(6, 6, 4);
    let route = |device: &Device| {
        Router::new(
            device,
            RouterConfig {
                max_passes: 6,
                ..RouterConfig::default()
            },
        )
        .route(&circuit)
    };
    let linear = minimum_channel_width(base, 3..=16, WidthSearch::Linear, route).unwrap();
    let binary = minimum_channel_width(base, 3..=16, WidthSearch::Binary, route).unwrap();
    assert_eq!(linear.channel_width, binary.channel_width);
}

#[test]
fn steiner_router_needs_no_more_width_than_the_baseline() {
    let profile = test_profile();
    let circuit = synthesize(&profile, 2, 9).unwrap();
    let base = ArchSpec::xilinx4000(6, 6, 4);
    let ours = minimum_channel_width(base, 3..=16, WidthSearch::Binary, |device| {
        Router::new(
            device,
            RouterConfig {
                max_passes: 6,
                ..RouterConfig::default()
            },
        )
        .route(&circuit)
    })
    .unwrap();
    let baseline = minimum_channel_width(base, 3..=16, WidthSearch::Binary, |device| {
        BaselineRouter::new(
            device,
            BaselineConfig {
                max_passes: 6,
                ..BaselineConfig::default()
            },
        )
        .route(&circuit)
    })
    .unwrap();
    assert!(
        ours.channel_width <= baseline.channel_width,
        "IKMB router needed W={}, baseline W={}",
        ours.channel_width,
        baseline.channel_width
    );
}

#[test]
fn parallel_routing_is_deterministic_and_matches_sequential() {
    // The parallel engine speculates against per-batch snapshots and
    // falls back to the sequential path on conflict, so `threads = 4`
    // must reproduce the sequential result bit-for-bit: same trees, same
    // pass count, same wirelength.
    let profile = test_profile();
    for (seed, arch) in [
        (9u64, ArchSpec::xilinx4000(6, 6, 9)),
        (11u64, ArchSpec::xilinx4000(6, 6, 9)),
        (9u64, ArchSpec::xilinx3000(6, 6, 10)),
    ] {
        let circuit = synthesize(&profile, 2, seed).unwrap();
        let device = Device::new(arch).unwrap();
        let sequential = Router::new(&device, RouterConfig::default())
            .route(&circuit)
            .unwrap();
        let parallel = Router::new(
            &device,
            RouterConfig {
                threads: 4,
                ..RouterConfig::default()
            },
        )
        .route(&circuit)
        .unwrap();
        assert_eq!(parallel.trees, sequential.trees, "seed {seed}");
        assert_eq!(parallel.passes, sequential.passes, "seed {seed}");
        assert_eq!(
            parallel.total_wirelength, sequential.total_wirelength,
            "seed {seed}"
        );
        // The parallel run records per-pass speculation statistics and an
        // end-of-pass congestion snapshot, and determinism extends to the
        // occupancy state: both engines leave the channels identically
        // full. (The default wavefront scheduler never batches. How the
        // nets split between worker speculation and the committer's
        // inline claims depends on host scheduling, so the guaranteed
        // speculation counter is asserted on a claims-disabled run
        // below.)
        assert_eq!(parallel.telemetry.passes.len(), parallel.passes);
        assert!(parallel.telemetry.passes.iter().all(|t| t.batches == 0));
        let spec_only = Router::new(
            &device,
            RouterConfig {
                threads: 4,
                committer_claims: false,
                ..RouterConfig::default()
            },
        )
        .route(&circuit)
        .unwrap();
        assert_eq!(spec_only.trees, sequential.trees, "seed {seed}");
        assert!(spec_only.telemetry.passes.iter().all(|t| t.speculated > 0));
        assert!(parallel
            .telemetry
            .passes
            .iter()
            .all(|t| t.congestion.positions > 0 && t.congestion.used_positions > 0));
        let snapshots = |o: &fpga_route::fpga::RouteOutcome| {
            o.telemetry
                .passes
                .iter()
                .map(|t| t.congestion.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(snapshots(&parallel), snapshots(&sequential), "seed {seed}");
    }
}

#[test]
fn speculation_thresholds_shift_only_wall_clock_not_results() {
    // `spec_exit_misses` / `spec_probe_period` tune how eagerly the
    // wavefront suspends and re-probes speculation; they must never
    // change what gets routed. Route the same circuit at the two
    // extremes of each knob and demand bit-identity with the defaults.
    let profile = test_profile();
    let circuit = synthesize(&profile, 2, 9).unwrap();
    let device = Device::new(ArchSpec::xilinx4000(6, 6, 9)).unwrap();
    let defaults = RouterConfig::default();
    assert_eq!(defaults.spec_exit_misses, 4);
    assert_eq!(defaults.spec_probe_period, 32);
    let reference = Router::new(&device, RouterConfig { threads: 4, ..defaults.clone() })
        .route(&circuit)
        .unwrap();
    for (exit_misses, probe_period) in [(1, 1), (1, 1024), (64, 1), (64, 1024), (0, 0)] {
        let outcome = Router::new(
            &device,
            RouterConfig {
                threads: 4,
                spec_exit_misses: exit_misses,
                spec_probe_period: probe_period,
                ..RouterConfig::default()
            },
        )
        .route(&circuit)
        .unwrap();
        assert_eq!(
            outcome.trees, reference.trees,
            "exit_misses={exit_misses} probe_period={probe_period}"
        );
        assert_eq!(outcome.passes, reference.passes);
        assert_eq!(outcome.total_wirelength, reference.total_wirelength);
    }
}

#[test]
fn parallel_width_search_matches_sequential() {
    use fpga_route::fpga::width::minimum_channel_width_parallel;
    let profile = test_profile();
    let circuit = synthesize(&profile, 2, 9).unwrap();
    let base = ArchSpec::xilinx4000(6, 6, 4);
    let config = RouterConfig {
        max_passes: 6,
        threads: 2,
        ..RouterConfig::default()
    };
    let linear = minimum_channel_width(base, 3..=16, WidthSearch::Linear, |device| {
        Router::new(device, config.clone()).route(&circuit)
    })
    .unwrap();
    let parallel = minimum_channel_width_parallel(base, 3..=16, 4, |device| {
        Router::new(device, config.clone()).route(&circuit)
    })
    .unwrap();
    assert_eq!(parallel.channel_width, linear.channel_width);
}

#[test]
fn unroutable_reports_are_accurate() {
    let profile = test_profile();
    let circuit = synthesize(&profile, 2, 9).unwrap();
    let device = Device::new(ArchSpec::xilinx4000(6, 6, 1)).unwrap();
    let err = Router::new(
        &device,
        RouterConfig {
            max_passes: 2,
            ..RouterConfig::default()
        },
    )
    .route(&circuit)
    .unwrap_err();
    match err {
        FpgaError::Unroutable {
            channel_width,
            passes,
            failed_net,
            ..
        } => {
            assert_eq!(channel_width, 1);
            assert_eq!(passes, 2);
            assert!(failed_net < circuit.net_count());
        }
        other => panic!("expected Unroutable, got {other}"),
    }
}

#[test]
fn circuit_architecture_mismatch_is_rejected() {
    let profile = test_profile();
    let circuit = synthesize(&profile, 2, 9).unwrap();
    let device = Device::new(ArchSpec::xilinx4000(7, 6, 8)).unwrap();
    assert!(matches!(
        Router::new(&device, RouterConfig::default()).route(&circuit),
        Err(FpgaError::CircuitMismatch(_))
    ));
}
