//! Integration tests for negotiated-congestion (PathFinder) routing.
//!
//! The mode's defining property is that each iteration's route phase is
//! a pure function of the priced snapshot: which worker routes a net can
//! never change what it routes. So the whole outcome — trees, iteration
//! count, wirelength, even the failure report — must be bit-identical
//! across thread counts and scheduler settings. These tests pin that,
//! plus the two contracts the mode adds: a converged routing really is
//! segment-disjoint, and an unconverged one names the still-contended
//! nodes instead of failing silently.

use fpga_route::fpga::synth::{synthesize, CircuitProfile};
use fpga_route::fpga::{
    ArchSpec, BlockPin, Circuit, CircuitNet, Device, FpgaError, RouteMode, RouteOutcome, Router,
    RouterConfig, SchedulerKind, Side,
};

/// A small synthetic profile: enough nets to contend, fast to route.
fn tiny_profile() -> CircuitProfile {
    CircuitProfile {
        name: "tiny",
        rows: 5,
        cols: 5,
        nets_2_3: 8,
        nets_4_10: 3,
        nets_over_10: 0,
    }
}

fn pf_config(threads: usize, scheduler: SchedulerKind) -> RouterConfig {
    RouterConfig {
        mode: RouteMode::Pathfinder,
        threads,
        scheduler,
        ..RouterConfig::default()
    }
}

fn route_tiny(width: usize, config: RouterConfig) -> Result<RouteOutcome, FpgaError> {
    let profile = tiny_profile();
    let circuit = synthesize(&profile, 2, 1995).expect("synthesizable");
    let device = Device::new(ArchSpec::xilinx4000(profile.rows, profile.cols, width)).unwrap();
    Router::new(&device, config).route(&circuit)
}

fn pin(row: usize, col: usize, side: Side, slot: usize) -> BlockPin {
    BlockPin {
        row,
        col,
        side,
        slot,
    }
}

/// Two nets that each route fine alone but must cross the same channels
/// of a 2×2 array, plus a third along the diagonal — the same shape the
/// width-search tests use, known unroutable at W = 1.
fn crossing_circuit() -> Circuit {
    Circuit::new(
        "cross",
        2,
        2,
        vec![
            CircuitNet {
                pins: vec![pin(0, 0, Side::East, 0), pin(1, 1, Side::West, 0)],
            },
            CircuitNet {
                pins: vec![pin(0, 1, Side::West, 0), pin(1, 0, Side::East, 0)],
            },
            CircuitNet {
                pins: vec![pin(0, 0, Side::South, 1), pin(1, 1, Side::North, 1)],
            },
        ],
    )
    .unwrap()
}

#[test]
fn pathfinder_is_bit_identical_across_threads_and_schedulers() {
    let sequential = route_tiny(8, pf_config(1, SchedulerKind::Wavefront)).unwrap();
    for scheduler in [SchedulerKind::Wavefront, SchedulerKind::Batch] {
        for threads in [1usize, 2, 4] {
            let parallel = route_tiny(8, pf_config(threads, scheduler)).unwrap();
            let context = format!("threads {threads}, {}", scheduler.name());
            assert_eq!(parallel.trees, sequential.trees, "{context}");
            assert_eq!(parallel.passes, sequential.passes, "{context}");
            assert_eq!(
                parallel.total_wirelength, sequential.total_wirelength,
                "{context}"
            );
            assert_eq!(
                parallel.max_pathlengths, sequential.max_pathlengths,
                "{context}"
            );
        }
    }
}

#[test]
fn converged_routing_is_segment_disjoint_within_budget() {
    let profile = tiny_profile();
    let circuit = synthesize(&profile, 2, 1995).expect("synthesizable");
    let device = Device::new(ArchSpec::xilinx4000(profile.rows, profile.cols, 8)).unwrap();
    let outcome = Router::new(&device, pf_config(4, SchedulerKind::Wavefront))
        .route(&circuit)
        .expect("routable at a generous width");
    assert!(
        outcome.passes <= RouterConfig::default().pf_max_iterations,
        "convergence must fit the default iteration budget, took {}",
        outcome.passes
    );
    // Convergence means no segment node is claimed by two nets.
    let mut used = vec![false; device.graph().node_count()];
    for (ni, tree) in outcome.trees.iter().enumerate() {
        for v in tree.nodes() {
            if device.segment_position(v).is_some() {
                assert!(
                    !used[v.index()],
                    "net {ni} shares segment node {v:?} with an earlier net"
                );
                used[v.index()] = true;
            }
        }
    }
}

#[test]
fn unroutable_reports_the_over_capacity_nodes_identically_across_threads() {
    let circuit = crossing_circuit();
    let device = Device::new(ArchSpec::xilinx4000(2, 2, 1)).unwrap();
    let mut reference: Option<(usize, usize, Vec<_>)> = None;
    for threads in [1usize, 2, 4] {
        let config = RouterConfig {
            pf_max_iterations: 4,
            ..pf_config(threads, SchedulerKind::Wavefront)
        };
        let err = Router::new(&device, config)
            .route(&circuit)
            .expect_err("W = 1 cannot host the crossing circuit");
        let FpgaError::Unroutable {
            channel_width,
            passes,
            failed_net,
            overcapacity,
        } = err
        else {
            panic!("expected Unroutable, got {err}");
        };
        assert_eq!(channel_width, 1);
        // Contention (not disconnection): the budget was spent and the
        // report names the contested nodes in ascending id order.
        assert!(
            !overcapacity.is_empty(),
            "threads {threads}: failure must name the contested nodes"
        );
        assert_eq!(passes, 4, "threads {threads}");
        assert!(
            overcapacity.windows(2).all(|w| w[0] < w[1]),
            "threads {threads}: over-capacity set must be sorted ascending"
        );
        match &reference {
            None => reference = Some((passes, failed_net, overcapacity)),
            Some((p, f, o)) => {
                assert_eq!(passes, *p, "threads {threads}: passes differ");
                assert_eq!(failed_net, *f, "threads {threads}: failed net differs");
                assert_eq!(&overcapacity, o, "threads {threads}: over-capacity set differs");
            }
        }
    }
}

fn selective_config(threads: usize, scheduler: SchedulerKind) -> RouterConfig {
    RouterConfig {
        pf_selective: true,
        ..pf_config(threads, scheduler)
    }
}

#[test]
fn selective_mode_is_bit_identical_across_threads_and_schedulers() {
    // Dirty-set membership and the congestion-priced reroute order are
    // functions of the single-writer state alone; the worker partition
    // must stay invisible in every observable output, telemetry
    // included.
    let sequential = route_tiny(8, selective_config(1, SchedulerKind::Wavefront)).unwrap();
    for scheduler in [SchedulerKind::Wavefront, SchedulerKind::Batch] {
        for threads in [1usize, 2, 4] {
            let parallel = route_tiny(8, selective_config(threads, scheduler)).unwrap();
            let context = format!("threads {threads}, {}", scheduler.name());
            assert_eq!(parallel.trees, sequential.trees, "{context}");
            assert_eq!(parallel.passes, sequential.passes, "{context}");
            assert_eq!(
                parallel.total_wirelength, sequential.total_wirelength,
                "{context}"
            );
            assert_eq!(
                parallel.max_pathlengths, sequential.max_pathlengths,
                "{context}"
            );
            let dirty: Vec<usize> = parallel
                .telemetry
                .passes
                .iter()
                .map(|p| p.dirty_nets)
                .collect();
            let reference: Vec<usize> = sequential
                .telemetry
                .passes
                .iter()
                .map(|p| p.dirty_nets)
                .collect();
            assert_eq!(dirty, reference, "{context}: dirty trajectory differs");
        }
    }
}

#[test]
fn selective_converged_routing_is_segment_disjoint() {
    // Usage conservation: skipped nets keep their trees in the tally,
    // so a selective convergence is a real disjointness proof, not an
    // artifact of forgetting the nets that never rerouted.
    let profile = tiny_profile();
    let circuit = synthesize(&profile, 2, 1995).expect("synthesizable");
    let device = Device::new(ArchSpec::xilinx4000(profile.rows, profile.cols, 8)).unwrap();
    let outcome = Router::new(&device, selective_config(4, SchedulerKind::Wavefront))
        .route(&circuit)
        .expect("routable at a generous width");
    let mut used = vec![false; device.graph().node_count()];
    for (ni, tree) in outcome.trees.iter().enumerate() {
        for v in tree.nodes() {
            if device.segment_position(v).is_some() {
                assert!(
                    !used[v.index()],
                    "net {ni} shares segment node {v:?} with an earlier net"
                );
                used[v.index()] = true;
            }
        }
    }
}

#[test]
fn selective_dirty_nets_shrink_while_converging() {
    // The acceptance trajectory: iteration 1 routes everything, and the
    // dirty set then strictly decreases to convergence on this circuit —
    // iteration cost tracks remaining congestion, not circuit size.
    let outcome = route_tiny(8, selective_config(1, SchedulerKind::Wavefront)).unwrap();
    let dirty: Vec<usize> = outcome
        .telemetry
        .passes
        .iter()
        .map(|p| p.dirty_nets)
        .collect();
    assert!(
        outcome.passes >= 2,
        "need at least one negotiation round for the trajectory to mean anything"
    );
    assert_eq!(dirty[0], 11, "iteration 1 must route every net of the tiny profile");
    assert!(
        dirty.windows(2).all(|w| w[1] < w[0]),
        "dirty-net counts must strictly decrease across converging iterations: {dirty:?}"
    );
    // The iterations after the first leave clean nets untouched.
    assert!(
        dirty[1..].iter().all(|&d| d < 11),
        "no later iteration may reroute the whole circuit: {dirty:?}"
    );
}

#[test]
fn selective_unroutable_matches_full_mode_and_is_thread_independent() {
    // On a circuit where every net stays in conflict, the dirty set is
    // the whole circuit each iteration, so selective mode must walk the
    // exact trajectory full-reroute mode walks — same final
    // over-capacity set, same failed net — and stay identical across
    // thread counts.
    let circuit = crossing_circuit();
    let device = Device::new(ArchSpec::xilinx4000(2, 2, 1)).unwrap();
    let unroutable = |config: RouterConfig| -> (usize, usize, Vec<_>) {
        let err = Router::new(&device, config)
            .route(&circuit)
            .expect_err("W = 1 cannot host the crossing circuit");
        match err {
            FpgaError::Unroutable {
                channel_width,
                passes,
                failed_net,
                overcapacity,
            } => {
                assert_eq!(channel_width, 1);
                assert!(!overcapacity.is_empty(), "failure must name contested nodes");
                assert!(overcapacity.windows(2).all(|w| w[0] < w[1]));
                (passes, failed_net, overcapacity)
            }
            other => panic!("expected Unroutable, got {other}"),
        }
    };
    let full = unroutable(RouterConfig {
        pf_max_iterations: 4,
        ..pf_config(1, SchedulerKind::Wavefront)
    });
    for scheduler in [SchedulerKind::Wavefront, SchedulerKind::Batch] {
        for threads in [1usize, 2, 4] {
            let selective = unroutable(RouterConfig {
                pf_max_iterations: 4,
                ..selective_config(threads, scheduler)
            });
            assert_eq!(
                selective, full,
                "threads {threads}, {}: selective failure report diverged from full mode",
                scheduler.name()
            );
        }
    }
}

#[test]
fn history_decay_is_deterministic_across_threads() {
    // Decay runs in the single-writer sweep, so a decayed negotiation is
    // just as partition-independent as an undecayed one.
    let config = |threads| RouterConfig {
        pf_history_decay_milli: 125,
        ..selective_config(threads, SchedulerKind::Wavefront)
    };
    let sequential = route_tiny(8, config(1)).unwrap();
    for threads in [2usize, 4] {
        let parallel = route_tiny(8, config(threads)).unwrap();
        assert_eq!(parallel.trees, sequential.trees, "threads {threads}");
        assert_eq!(parallel.passes, sequential.passes, "threads {threads}");
    }
    // Decay off is the exact undecayed router: the flag default changes
    // nothing about the trajectory.
    let undecayed = route_tiny(8, selective_config(1, SchedulerKind::Wavefront)).unwrap();
    let explicit_zero = route_tiny(
        8,
        RouterConfig {
            pf_history_decay_milli: 0,
            ..selective_config(1, SchedulerKind::Wavefront)
        },
    )
    .unwrap();
    assert_eq!(explicit_zero.trees, undecayed.trees);
    assert_eq!(explicit_zero.passes, undecayed.passes);
}

#[test]
fn saturated_pricing_degrades_gracefully_instead_of_panicking() {
    // Maximal pricing drives every contended node to Weight::MAX after
    // one iteration. All arithmetic saturates, so the router must still
    // terminate with a well-formed answer — converged or an honest
    // Unroutable — never a panic.
    for threads in [1usize, 4] {
        let config = RouterConfig {
            pf_present_milli: u64::MAX,
            pf_history_milli: u64::MAX,
            pf_max_iterations: 6,
            ..pf_config(threads, SchedulerKind::Wavefront)
        };
        match route_tiny(6, config) {
            Ok(outcome) => assert!(!outcome.trees.is_empty()),
            Err(FpgaError::Unroutable { .. }) => {}
            Err(other) => panic!("unexpected error under saturated pricing: {other}"),
        }
    }
}
