//! Integration tests for negotiated-congestion (PathFinder) routing.
//!
//! The mode's defining property is that each iteration's route phase is
//! a pure function of the priced snapshot: which worker routes a net can
//! never change what it routes. So the whole outcome — trees, iteration
//! count, wirelength, even the failure report — must be bit-identical
//! across thread counts and scheduler settings. These tests pin that,
//! plus the two contracts the mode adds: a converged routing really is
//! segment-disjoint, and an unconverged one names the still-contended
//! nodes instead of failing silently.

use fpga_route::fpga::synth::{synthesize, CircuitProfile};
use fpga_route::fpga::{
    ArchSpec, BlockPin, Circuit, CircuitNet, Device, FpgaError, RouteMode, RouteOutcome, Router,
    RouterConfig, SchedulerKind, Side,
};

/// A small synthetic profile: enough nets to contend, fast to route.
fn tiny_profile() -> CircuitProfile {
    CircuitProfile {
        name: "tiny",
        rows: 5,
        cols: 5,
        nets_2_3: 8,
        nets_4_10: 3,
        nets_over_10: 0,
    }
}

fn pf_config(threads: usize, scheduler: SchedulerKind) -> RouterConfig {
    RouterConfig {
        mode: RouteMode::Pathfinder,
        threads,
        scheduler,
        ..RouterConfig::default()
    }
}

fn route_tiny(width: usize, config: RouterConfig) -> Result<RouteOutcome, FpgaError> {
    let profile = tiny_profile();
    let circuit = synthesize(&profile, 2, 1995).expect("synthesizable");
    let device = Device::new(ArchSpec::xilinx4000(profile.rows, profile.cols, width)).unwrap();
    Router::new(&device, config).route(&circuit)
}

fn pin(row: usize, col: usize, side: Side, slot: usize) -> BlockPin {
    BlockPin {
        row,
        col,
        side,
        slot,
    }
}

/// Two nets that each route fine alone but must cross the same channels
/// of a 2×2 array, plus a third along the diagonal — the same shape the
/// width-search tests use, known unroutable at W = 1.
fn crossing_circuit() -> Circuit {
    Circuit::new(
        "cross",
        2,
        2,
        vec![
            CircuitNet {
                pins: vec![pin(0, 0, Side::East, 0), pin(1, 1, Side::West, 0)],
            },
            CircuitNet {
                pins: vec![pin(0, 1, Side::West, 0), pin(1, 0, Side::East, 0)],
            },
            CircuitNet {
                pins: vec![pin(0, 0, Side::South, 1), pin(1, 1, Side::North, 1)],
            },
        ],
    )
    .unwrap()
}

#[test]
fn pathfinder_is_bit_identical_across_threads_and_schedulers() {
    let sequential = route_tiny(8, pf_config(1, SchedulerKind::Wavefront)).unwrap();
    for scheduler in [SchedulerKind::Wavefront, SchedulerKind::Batch] {
        for threads in [1usize, 2, 4] {
            let parallel = route_tiny(8, pf_config(threads, scheduler)).unwrap();
            let context = format!("threads {threads}, {}", scheduler.name());
            assert_eq!(parallel.trees, sequential.trees, "{context}");
            assert_eq!(parallel.passes, sequential.passes, "{context}");
            assert_eq!(
                parallel.total_wirelength, sequential.total_wirelength,
                "{context}"
            );
            assert_eq!(
                parallel.max_pathlengths, sequential.max_pathlengths,
                "{context}"
            );
        }
    }
}

#[test]
fn converged_routing_is_segment_disjoint_within_budget() {
    let profile = tiny_profile();
    let circuit = synthesize(&profile, 2, 1995).expect("synthesizable");
    let device = Device::new(ArchSpec::xilinx4000(profile.rows, profile.cols, 8)).unwrap();
    let outcome = Router::new(&device, pf_config(4, SchedulerKind::Wavefront))
        .route(&circuit)
        .expect("routable at a generous width");
    assert!(
        outcome.passes <= RouterConfig::default().pf_max_iterations,
        "convergence must fit the default iteration budget, took {}",
        outcome.passes
    );
    // Convergence means no segment node is claimed by two nets.
    let mut used = vec![false; device.graph().node_count()];
    for (ni, tree) in outcome.trees.iter().enumerate() {
        for v in tree.nodes() {
            if device.segment_position(v).is_some() {
                assert!(
                    !used[v.index()],
                    "net {ni} shares segment node {v:?} with an earlier net"
                );
                used[v.index()] = true;
            }
        }
    }
}

#[test]
fn unroutable_reports_the_over_capacity_nodes_identically_across_threads() {
    let circuit = crossing_circuit();
    let device = Device::new(ArchSpec::xilinx4000(2, 2, 1)).unwrap();
    let mut reference: Option<(usize, usize, Vec<_>)> = None;
    for threads in [1usize, 2, 4] {
        let config = RouterConfig {
            pf_max_iterations: 4,
            ..pf_config(threads, SchedulerKind::Wavefront)
        };
        let err = Router::new(&device, config)
            .route(&circuit)
            .expect_err("W = 1 cannot host the crossing circuit");
        let FpgaError::Unroutable {
            channel_width,
            passes,
            failed_net,
            overcapacity,
        } = err
        else {
            panic!("expected Unroutable, got {err}");
        };
        assert_eq!(channel_width, 1);
        // Contention (not disconnection): the budget was spent and the
        // report names the contested nodes in ascending id order.
        assert!(
            !overcapacity.is_empty(),
            "threads {threads}: failure must name the contested nodes"
        );
        assert_eq!(passes, 4, "threads {threads}");
        assert!(
            overcapacity.windows(2).all(|w| w[0] < w[1]),
            "threads {threads}: over-capacity set must be sorted ascending"
        );
        match &reference {
            None => reference = Some((passes, failed_net, overcapacity)),
            Some((p, f, o)) => {
                assert_eq!(passes, *p, "threads {threads}: passes differ");
                assert_eq!(failed_net, *f, "threads {threads}: failed net differs");
                assert_eq!(&overcapacity, o, "threads {threads}: over-capacity set differs");
            }
        }
    }
}

#[test]
fn saturated_pricing_degrades_gracefully_instead_of_panicking() {
    // Maximal pricing drives every contended node to Weight::MAX after
    // one iteration. All arithmetic saturates, so the router must still
    // terminate with a well-formed answer — converged or an honest
    // Unroutable — never a panic.
    for threads in [1usize, 4] {
        let config = RouterConfig {
            pf_present_milli: u64::MAX,
            pf_history_milli: u64::MAX,
            pf_max_iterations: 6,
            ..pf_config(threads, SchedulerKind::Wavefront)
        };
        match route_tiny(6, config) {
            Ok(outcome) => assert!(!outcome.trees.is_empty()),
            Err(FpgaError::Unroutable { .. }) => {}
            Err(other) => panic!("unexpected error under saturated pricing: {other}"),
        }
    }
}
