//! Property-based tests (proptest) over the core invariants.

use proptest::prelude::*;
use rand::SeedableRng;

use fpga_route::graph::floyd::AllPairs;
use fpga_route::graph::random::{random_connected_graph, random_net};
use fpga_route::graph::{GridGraph, ShortestPaths, TerminalDistances, Weight};
use fpga_route::steiner::{idom, ikmb, Dom, Kmb, Net, Pfa, SteinerHeuristic};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Dijkstra agrees with Floyd–Warshall on arbitrary random graphs.
    #[test]
    fn dijkstra_matches_floyd_warshall(seed in 0u64..5000, n in 2usize..16, extra in 0usize..20) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let g = random_connected_graph(n, n - 1 + extra, 1..9, &mut rng).unwrap();
        let ap = AllPairs::run(&g);
        let src = g.node_ids().next().unwrap();
        let sp = ShortestPaths::run(&g, src).unwrap();
        for v in g.node_ids() {
            prop_assert_eq!(sp.dist(v), ap.dist(src, v));
        }
    }

    /// Triangle inequality holds in every distance graph.
    #[test]
    fn distance_graph_satisfies_triangle_inequality(seed in 0u64..5000, n in 4usize..14) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let g = random_connected_graph(n, n + 4, 1..9, &mut rng).unwrap();
        let pins = random_net(&g, 4, &mut rng).unwrap();
        let td = TerminalDistances::compute(&g, &pins).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                for k in 0..4 {
                    let (Some(ij), Some(ik), Some(kj)) =
                        (td.dist(i, j), td.dist(i, k), td.dist(k, j)) else { continue };
                    prop_assert!(ij <= ik + kj);
                }
            }
        }
    }

    /// Every heuristic returns a *valid tree spanning the net*, with cost
    /// equal to the sum of its edge weights.
    #[test]
    fn heuristics_return_valid_spanning_trees(seed in 0u64..5000, n in 6usize..22, pins in 2usize..6) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let g = random_connected_graph(n, 2 * n, 1..9, &mut rng).unwrap();
        let terminals = random_net(&g, pins.min(n), &mut rng).unwrap();
        let net = Net::from_terminals(terminals).unwrap();
        for algo in [
            Box::new(Kmb::new()) as Box<dyn SteinerHeuristic>,
            Box::new(ikmb()),
            Box::new(Dom::new()),
            Box::new(Pfa::new()),
            Box::new(idom()),
        ] {
            let tree = algo.construct(&g, &net).unwrap();
            prop_assert!(tree.spans(&net));
            let recomputed: Weight = tree
                .edges()
                .iter()
                .map(|&e| g.weight(e).unwrap())
                .sum();
            prop_assert_eq!(recomputed, tree.cost());
            // A tree: |E| = |V| - 1 over its own node set.
            prop_assert_eq!(tree.edge_len() + 1, tree.node_len());
        }
    }

    /// The arborescence property survives arbitrary congestion reweighting.
    #[test]
    fn arborescences_respect_congested_metrics(seed in 0u64..5000, bumps in 0usize..40) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut grid = GridGraph::new(6, 6, Weight::UNIT).unwrap();
        let edges: Vec<_> = grid.graph().edge_ids().collect();
        for _ in 0..bumps {
            use rand::Rng;
            let e = edges[rng.gen_range(0..edges.len())];
            grid.graph_mut().add_weight(e, Weight::UNIT).unwrap();
        }
        let terminals = random_net(grid.graph(), 4, &mut rng).unwrap();
        let net = Net::from_terminals(terminals).unwrap();
        for algo in [
            Box::new(Pfa::new()) as Box<dyn SteinerHeuristic>,
            Box::new(Dom::new()),
            Box::new(idom()),
        ] {
            let tree = algo.construct(grid.graph(), &net).unwrap();
            prop_assert!(tree.is_shortest_paths_tree(grid.graph(), &net).unwrap());
        }
    }

    /// Removal then restoration of arbitrary resources is an exact no-op
    /// for shortest paths.
    #[test]
    fn removal_is_exactly_reversible(seed in 0u64..5000, kill in 1usize..8) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut grid = GridGraph::new(5, 5, Weight::UNIT).unwrap();
        let src = grid.node_at(0, 0).unwrap();
        let before = ShortestPaths::run(grid.graph(), src).unwrap();
        use rand::Rng;
        let victims: Vec<_> = (0..kill)
            .map(|_| {
                fpga_route::graph::NodeId::from_index(rng.gen_range(1..25))
            })
            .collect();
        for &v in &victims {
            grid.graph_mut().remove_node(v).unwrap();
        }
        for &v in &victims {
            grid.graph_mut().restore_node(v).unwrap();
        }
        let after = ShortestPaths::run(grid.graph(), src).unwrap();
        for v in grid.graph().node_ids() {
            prop_assert_eq!(before.dist(v), after.dist(v));
        }
    }

    /// IKMB's cost is monotone under candidate-pool growth: more
    /// candidates never hurt.
    #[test]
    fn bigger_candidate_pools_never_hurt(seed in 0u64..2000) {
        use fpga_route::steiner::{CandidatePool, Iterated, IteratedConfig};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let grid = GridGraph::new(6, 6, Weight::UNIT).unwrap();
        let terminals = random_net(grid.graph(), 5, &mut rng).unwrap();
        let net = Net::from_terminals(terminals).unwrap();
        let no_pool = Iterated::with_config(
            Kmb::new(),
            IteratedConfig { pool: CandidatePool::Explicit(vec![]), ..IteratedConfig::default() },
        );
        let all = ikmb();
        let restricted = no_pool.construct(grid.graph(), &net).unwrap();
        let free = all.construct(grid.graph(), &net).unwrap();
        prop_assert!(free.cost() <= restricted.cost());
    }
}
