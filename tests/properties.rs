//! Property-based tests over the core invariants.
//!
//! Cases are generated from the vendored [`fpga_route::graph::rng`] PRNG
//! rather than `proptest` so the suite builds with no network access.

use fpga_route::graph::floyd::AllPairs;
use fpga_route::graph::random::{random_connected_graph, random_net};
use fpga_route::graph::rng::{Rng, SplitMix64};
use fpga_route::graph::{GridGraph, ShortestPaths, TerminalDistances, Weight};
use fpga_route::steiner::{idom, ikmb, Dom, Kmb, Net, Pfa, SteinerHeuristic};

const CASES: u64 = 24;

/// Dijkstra agrees with Floyd–Warshall on arbitrary random graphs.
#[test]
fn dijkstra_matches_floyd_warshall() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let n = rng.gen_range(2..16usize);
        let extra = rng.gen_range(0..20usize);
        let g = random_connected_graph(n, n - 1 + extra, 1..9, &mut rng).unwrap();
        let ap = AllPairs::run(&g);
        let src = g.node_ids().next().unwrap();
        let sp = ShortestPaths::run(&g, src).unwrap();
        for v in g.node_ids() {
            assert_eq!(sp.dist(v), ap.dist(src, v), "seed {seed}");
        }
    }
}

/// Triangle inequality holds in every distance graph.
#[test]
fn distance_graph_satisfies_triangle_inequality() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let n = rng.gen_range(4..14usize);
        let g = random_connected_graph(n, n + 4, 1..9, &mut rng).unwrap();
        let pins = random_net(&g, 4, &mut rng).unwrap();
        let td = TerminalDistances::compute(&g, &pins).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                for k in 0..4 {
                    let (Some(ij), Some(ik), Some(kj)) =
                        (td.dist(i, j), td.dist(i, k), td.dist(k, j))
                    else {
                        continue;
                    };
                    assert!(ij <= ik + kj, "seed {seed}");
                }
            }
        }
    }
}

/// Every heuristic returns a *valid tree spanning the net*, with cost
/// equal to the sum of its edge weights.
#[test]
fn heuristics_return_valid_spanning_trees() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let n = rng.gen_range(6..22usize);
        let pins = rng.gen_range(2..6usize);
        let g = random_connected_graph(n, 2 * n, 1..9, &mut rng).unwrap();
        let terminals = random_net(&g, pins.min(n), &mut rng).unwrap();
        let net = Net::from_terminals(terminals).unwrap();
        for algo in [
            Box::new(Kmb::new()) as Box<dyn SteinerHeuristic>,
            Box::new(ikmb()),
            Box::new(Dom::new()),
            Box::new(Pfa::new()),
            Box::new(idom()),
        ] {
            let tree = algo.construct(&g, &net).unwrap();
            assert!(tree.spans(&net), "seed {seed}");
            let recomputed: Weight = tree.edges().iter().map(|&e| g.weight(e).unwrap()).sum();
            assert_eq!(recomputed, tree.cost(), "seed {seed}");
            // A tree: |E| = |V| - 1 over its own node set.
            assert_eq!(tree.edge_len() + 1, tree.node_len(), "seed {seed}");
        }
    }
}

/// The arborescence property survives arbitrary congestion reweighting.
#[test]
fn arborescences_respect_congested_metrics() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let bumps = rng.gen_range(0..40usize);
        let mut grid = GridGraph::new(6, 6, Weight::UNIT).unwrap();
        let edges: Vec<_> = grid.graph().edge_ids().collect();
        for _ in 0..bumps {
            let e = edges[rng.gen_range(0..edges.len())];
            grid.graph_mut().add_weight(e, Weight::UNIT).unwrap();
        }
        let terminals = random_net(grid.graph(), 4, &mut rng).unwrap();
        let net = Net::from_terminals(terminals).unwrap();
        for algo in [
            Box::new(Pfa::new()) as Box<dyn SteinerHeuristic>,
            Box::new(Dom::new()),
            Box::new(idom()),
        ] {
            let tree = algo.construct(grid.graph(), &net).unwrap();
            assert!(
                tree.is_shortest_paths_tree(grid.graph(), &net).unwrap(),
                "seed {seed}"
            );
        }
    }
}

/// Removal then restoration of arbitrary resources is an exact no-op
/// for shortest paths.
#[test]
fn removal_is_exactly_reversible() {
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let kill = rng.gen_range(1..8usize);
        let mut grid = GridGraph::new(5, 5, Weight::UNIT).unwrap();
        let src = grid.node_at(0, 0).unwrap();
        let before = ShortestPaths::run(grid.graph(), src).unwrap();
        let victims: Vec<_> = (0..kill)
            .map(|_| fpga_route::graph::NodeId::from_index(rng.gen_range(1..25usize)))
            .collect();
        for &v in &victims {
            grid.graph_mut().remove_node(v).unwrap();
        }
        for &v in &victims {
            grid.graph_mut().restore_node(v).unwrap();
        }
        let after = ShortestPaths::run(grid.graph(), src).unwrap();
        for v in grid.graph().node_ids() {
            assert_eq!(before.dist(v), after.dist(v), "seed {seed}");
        }
    }
}

/// IKMB's cost is monotone under candidate-pool growth: more candidates
/// never hurt.
#[test]
fn bigger_candidate_pools_never_hurt() {
    use fpga_route::steiner::{CandidatePool, Iterated, IteratedConfig};
    for seed in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let grid = GridGraph::new(6, 6, Weight::UNIT).unwrap();
        let terminals = random_net(grid.graph(), 5, &mut rng).unwrap();
        let net = Net::from_terminals(terminals).unwrap();
        let no_pool = Iterated::with_config(
            Kmb::new(),
            IteratedConfig {
                pool: CandidatePool::Explicit(vec![]),
                ..IteratedConfig::default()
            },
        );
        let all = ikmb();
        let restricted = no_pool.construct(grid.graph(), &net).unwrap();
        let free = all.construct(grid.graph(), &net).unwrap();
        assert!(free.cost() <= restricted.cost(), "seed {seed}");
    }
}
