//! Adversarial property tests for the parallel engines' conflict
//! handling.
//!
//! Both parallel engines are only allowed to win wall-clock time; their
//! results must be bit-identical to the sequential router's. The
//! friendliest inputs are circuits whose nets occupy disjoint regions —
//! speculation commits without conflicts and the detector is barely
//! exercised. These tests do the opposite: nets are constructed so that
//! bounding boxes overlap maximally (every speculation stale) or so that
//! box-disjoint nets still collide through congestion detours (the
//! detector must catch what the boxes miss). Across seeded pin
//! assignments, thread counts, and both schedulers, the parallel outcome
//! must still match the sequential one exactly — trees, pass counts,
//! wirelength, and the end-of-pass congestion snapshots.

use fpga_route::fpga::synth::synthesize;
use fpga_route::fpga::{
    ArchSpec, BlockPin, Circuit, CircuitNet, Device, FpgaError, RouteOutcome, Router, RouterConfig,
    SchedulerKind, Side,
};
use fpga_route::graph::rng::{Rng, SliceRandom, SplitMix64};

/// Builds a circuit in which every net's bounding box covers the whole
/// array: pin 0 in the top-left quadrant, pin 1 in the bottom-right, plus
/// up to two extra pins from anywhere. Pin assignments (and hence the
/// router's net order, which sorts by pin count then index) vary by seed.
fn adversarial_circuit(seed: u64, rows: usize, cols: usize, nets: usize) -> Circuit {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut pool: Vec<BlockPin> = Vec::new();
    for row in 0..rows {
        for col in 0..cols {
            for side in [Side::North, Side::East, Side::South, Side::West] {
                for slot in 0..2 {
                    pool.push(BlockPin {
                        row,
                        col,
                        side,
                        slot,
                    });
                }
            }
        }
    }
    pool.shuffle(&mut rng);
    let mut top_left: Vec<BlockPin> = Vec::new();
    let mut bottom_right: Vec<BlockPin> = Vec::new();
    let mut anywhere: Vec<BlockPin> = Vec::new();
    for pin in pool {
        if pin.row < rows / 2 && pin.col < cols / 2 {
            top_left.push(pin);
        } else if pin.row >= rows.div_ceil(2) && pin.col >= cols.div_ceil(2) {
            bottom_right.push(pin);
        } else {
            anywhere.push(pin);
        }
    }
    let mut circuit_nets = Vec::with_capacity(nets);
    for _ in 0..nets {
        let mut pins = vec![
            top_left.pop().expect("enough corner pins"),
            bottom_right.pop().expect("enough corner pins"),
        ];
        for _ in 0..rng.gen_range(0..=2usize) {
            if let Some(extra) = anywhere.pop() {
                pins.push(extra);
            }
        }
        if rng.gen_ratio(1, 2) {
            pins.swap(0, 1); // vary which corner drives
        }
        circuit_nets.push(CircuitNet { pins });
    }
    Circuit::new("adversarial", rows, cols, circuit_nets).expect("pins are unique by construction")
}

/// Builds the nastiest known workload for the conflict detector: long
/// vertical 2-pin nets packed into a few far-apart columns. The columns'
/// bounding boxes are pairwise non-interacting, so nets from different
/// columns speculate concurrently (batched together, or DAG-independent
/// under the wavefront scheduler) — but the columns are oversubscribed
/// (more nets than tracks at the probe width), so committed routes detour
/// sideways into territory a concurrent speculation also claimed, going
/// stale and forcing the engine's repair path.
fn saturated_columns_circuit(seed: u64, rows: usize, cols: usize) -> Circuit {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut nets = Vec::new();
    for c in [0usize, 5] {
        let mut pool: Vec<BlockPin> = Vec::new();
        for r in 0..rows {
            for side in [Side::North, Side::East, Side::South, Side::West] {
                for slot in 0..2 {
                    pool.push(BlockPin { row: r, col: c, side, slot });
                }
            }
        }
        pool.shuffle(&mut rng);
        for _ in 0..6 {
            let top = pool
                .iter()
                .position(|p| p.row < 2)
                .expect("top pin available");
            let top = pool.remove(top);
            let bottom = pool
                .iter()
                .position(|p| p.row >= rows - 2)
                .expect("bottom pin available");
            let bottom = pool.remove(bottom);
            let mut pins = vec![top, bottom];
            if rng.gen_ratio(1, 2) {
                pins.swap(0, 1);
            }
            nets.push(CircuitNet { pins });
        }
    }
    nets.shuffle(&mut rng);
    Circuit::new("saturated-columns", rows, cols, nets).expect("pins are unique by construction")
}

fn assert_identical(parallel: &RouteOutcome, sequential: &RouteOutcome, context: &str) {
    assert_eq!(parallel.trees, sequential.trees, "{context}");
    assert_eq!(parallel.passes, sequential.passes, "{context}");
    assert_eq!(
        parallel.total_wirelength, sequential.total_wirelength,
        "{context}"
    );
    assert_eq!(
        parallel.max_pathlengths, sequential.max_pathlengths,
        "{context}"
    );
    let snapshots = |o: &RouteOutcome| {
        o.telemetry
            .passes
            .iter()
            .map(|t| t.congestion.clone())
            .collect::<Vec<_>>()
    };
    assert_eq!(snapshots(parallel), snapshots(sequential), "{context}");
}

/// Every speculated net is resolved exactly once on a completed pass —
/// accepted, re-routed (batch), or re-speculated (wavefront). A pass
/// that ended at a failed net consumed that net's speculation without
/// resolving it, so earlier (failed) passes only bound the sum.
fn assert_speculation_accounting(outcome: &RouteOutcome, context: &str) {
    let passes = &outcome.telemetry.passes;
    for (i, t) in passes.iter().enumerate() {
        let resolved = t.accepted + t.rerouted + t.respeculated;
        if i + 1 == passes.len() {
            assert_eq!(resolved, t.speculated, "{context}, pass {}", t.pass);
        } else {
            assert!(
                resolved <= t.speculated,
                "{context}, pass {}: {resolved} resolved of {} speculated",
                t.pass,
                t.speculated
            );
        }
    }
}

#[test]
fn maximal_bbox_overlap_stays_bit_identical_across_thread_counts() {
    for seed in [1u64, 7, 42, 1995, 20010] {
        let circuit = adversarial_circuit(seed, 6, 6, 10);
        let device = Device::new(ArchSpec::xilinx4000(6, 6, 9)).unwrap();
        let sequential = Router::new(&device, RouterConfig::default())
            .route(&circuit)
            .unwrap();
        for scheduler in [SchedulerKind::Wavefront, SchedulerKind::Batch] {
            for threads in [2usize, 4, 8] {
                let parallel = Router::new(
                    &device,
                    RouterConfig {
                        threads,
                        scheduler,
                        ..RouterConfig::default()
                    },
                )
                .route(&circuit)
                .unwrap();
                let context = format!("seed {seed}, threads {threads}, {}", scheduler.name());
                assert_identical(&parallel, &sequential, &context);
                assert_speculation_accounting(&parallel, &context);
            }
        }
    }
}

#[test]
fn stale_speculations_reroute_and_stay_bit_identical() {
    // The construction must actually be adversarial: across the seeds at
    // least one stale speculation has to fall back to the batch engine's
    // sequential re-route — and under exactly that pressure the parallel
    // outcome must still match the sequential one bit for bit. (Per-seed
    // reroute counts can legitimately be zero, so the pressure assertion
    // spans the whole seed family.)
    let mut rerouted = 0u64;
    let mut speculated = 0u64;
    for seed in 1u64..=10 {
        let circuit = saturated_columns_circuit(seed, 8, 8);
        let device = Device::new(ArchSpec::xilinx4000(8, 8, 3)).unwrap();
        let sequential = Router::new(&device, RouterConfig::default())
            .route(&circuit)
            .unwrap();
        let parallel = Router::new(
            &device,
            RouterConfig {
                threads: 4,
                scheduler: SchedulerKind::Batch,
                ..RouterConfig::default()
            },
        )
        .route(&circuit)
        .unwrap();
        assert_identical(&parallel, &sequential, &format!("columns seed {seed}"));
        for t in &parallel.telemetry.passes {
            rerouted += t.rerouted as u64;
            speculated += t.speculated as u64;
        }
    }
    assert!(
        speculated > 0,
        "no net was ever speculated; the workload is trivial"
    );
    assert!(
        rerouted > 0,
        "no speculation ever went stale; the workload does not stress the detector"
    );
}

#[test]
fn respeculated_nets_stay_bit_identical_across_thread_counts() {
    // Same saturated-grid pressure against the wavefront scheduler: DAG-
    // independent nets collide through congestion detours, the commit-time
    // read-set check rejects the stale speculation, and the net re-enters
    // the ready queue against a fresh commit sequence. Across the seed
    // family at least one net must actually be re-speculated, and under
    // that pressure every thread count must match threads = 1 bit for bit.
    // Committer claims are disabled so every net goes through worker
    // speculation — on a busy or small host the work-conserving committer
    // would otherwise route most nets itself and starve the respeculation
    // path this test exists to stress.
    let mut respeculated = 0u64;
    let mut speculated = 0u64;
    for seed in 1u64..=10 {
        let circuit = saturated_columns_circuit(seed, 8, 8);
        let device = Device::new(ArchSpec::xilinx4000(8, 8, 3)).unwrap();
        let sequential = Router::new(&device, RouterConfig::default())
            .route(&circuit)
            .unwrap();
        for threads in [2usize, 4, 8] {
            let parallel = Router::new(
                &device,
                RouterConfig {
                    threads,
                    scheduler: SchedulerKind::Wavefront,
                    committer_claims: false,
                    ..RouterConfig::default()
                },
            )
            .route(&circuit)
            .unwrap();
            let context = format!("columns seed {seed}, threads {threads}");
            assert_identical(&parallel, &sequential, &context);
            assert_speculation_accounting(&parallel, &context);
            for t in &parallel.telemetry.passes {
                respeculated += t.respeculated as u64;
                speculated += t.speculated as u64;
                // The wavefront engine never takes the batch engine's
                // sequential re-route path.
                assert_eq!(t.rerouted, 0, "{context}, pass {}", t.pass);
            }
        }
    }
    assert!(
        speculated > 0,
        "no net was ever speculated; the workload is trivial"
    );
    assert!(
        respeculated > 0,
        "no speculation was ever requeued; the workload does not stress the scheduler"
    );
}

#[test]
fn overlapping_nets_agree_on_unroutability() {
    // Determinism must extend to failure: at a hopeless width all engines
    // report the same unroutable verdict, with identical pass budgets.
    let circuit = adversarial_circuit(3, 6, 6, 12);
    let device = Device::new(ArchSpec::xilinx4000(6, 6, 1)).unwrap();
    let config = RouterConfig {
        max_passes: 3,
        ..RouterConfig::default()
    };
    let sequential = Router::new(&device, config.clone())
        .route(&circuit)
        .unwrap_err();
    for scheduler in [SchedulerKind::Wavefront, SchedulerKind::Batch] {
        let parallel = Router::new(
            &device,
            RouterConfig {
                threads: 4,
                scheduler,
                ..config.clone()
            },
        )
        .route(&circuit)
        .unwrap_err();
        match (&sequential, parallel) {
            (
                FpgaError::Unroutable {
                    channel_width: ws,
                    passes: ps,
                    failed_net: ns,
                    ..
                },
                FpgaError::Unroutable {
                    channel_width: wp,
                    passes: pp,
                    failed_net: np,
                    ..
                },
            ) => {
                assert_eq!(*ws, wp, "{}", scheduler.name());
                assert_eq!(*ps, pp, "{}", scheduler.name());
                assert_eq!(*ns, np, "{}", scheduler.name());
            }
            other => panic!("expected two Unroutable errors, got {other:?}"),
        }
    }
}

#[test]
fn shuffled_synthetic_profiles_stay_deterministic() {
    // Same property on the paper-profile synthesizer, whose random pin
    // placement produces a different (but still heavily overlapping)
    // adversarial mix per seed.
    let profile = fpga_route::fpga::CircuitProfile {
        name: "adv",
        rows: 6,
        cols: 6,
        nets_2_3: 10,
        nets_4_10: 5,
        nets_over_10: 1,
    };
    for seed in [2u64, 13, 99] {
        let circuit = synthesize(&profile, 2, seed).unwrap();
        let device = Device::new(ArchSpec::xilinx4000(6, 6, 10)).unwrap();
        let sequential = Router::new(&device, RouterConfig::default())
            .route(&circuit)
            .unwrap();
        for scheduler in [SchedulerKind::Wavefront, SchedulerKind::Batch] {
            let parallel = Router::new(
                &device,
                RouterConfig {
                    threads: 3,
                    scheduler,
                    ..RouterConfig::default()
                },
            )
            .route(&circuit)
            .unwrap();
            assert_identical(
                &parallel,
                &sequential,
                &format!("synth seed {seed}, {}", scheduler.name()),
            );
        }
    }
}
