//! Tour of the paper's worst-case constructions (Figures 10, 11, 14).
//!
//! The heuristics' worst-case behaviour is part of the paper's story:
//! PFA can lose a factor Ω(N) on adversarial weighted graphs (Figure 10)
//! and approaches its tight factor of 2 on grid staircases (Figure 11),
//! while IDOM escapes PFA's traps but inherits the GSA problem's
//! set-cover-hardness: Ω(log N) on the Figure 14 gadget. This example
//! builds each family at a glance-sized scale and prints what every
//! algorithm does on it.
//!
//! Run with: `cargo run --release --example worst_cases`

use experiments_support::*;

// The gadget builders live in the experiments crate; to keep this example
// self-contained for library users, we rebuild the Figure 10 gadget here
// from public APIs only.
mod experiments_support {
    pub use fpga_route::graph::{Graph, NodeId, Weight};
    pub use fpga_route::steiner::{idom_with_config, IteratedConfig, Net, Pfa, SteinerHeuristic};
}

/// Figure 10 style gadget: `clusters` sink pairs, a shared shallow spine
/// `B` and private deep merge points `m_i` that bait PFA.
fn fig10_gadget(clusters: usize) -> (Graph, Net, Weight) {
    let eps = Weight::from_milli(1);
    let mut g = Graph::new();
    let n0 = g.add_node();
    let b = g.add_node();
    let m: Vec<NodeId> = (0..clusters).map(|_| g.add_node()).collect();
    let u: Vec<NodeId> = (0..clusters).map(|_| g.add_node()).collect();
    let mut sinks = Vec::new();
    for i in 0..clusters {
        let p = g.add_node();
        let q = g.add_node();
        g.add_edge(n0, m[i], Weight::UNIT.saturating_add(eps)).unwrap();
        g.add_edge(m[i], p, eps).unwrap();
        g.add_edge(m[i], q, eps).unwrap();
        g.add_edge(b, u[i], eps).unwrap();
        g.add_edge(u[i], p, eps).unwrap();
        g.add_edge(u[i], q, eps).unwrap();
        sinks.push(p);
        sinks.push(q);
    }
    g.add_edge(n0, b, Weight::UNIT).unwrap();
    let net = Net::new(n0, sinks).unwrap();
    let optimal = Weight::UNIT.saturating_add(eps.scale(3 * clusters as u64));
    (g, net, optimal)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Figure 10 family: PFA pays per cluster, IDOM folds the spine\n");
    println!(
        "{:>8} {:>8} {:>10} {:>10}",
        "clusters", "sinks", "PFA/opt", "IDOM/opt"
    );
    for clusters in [2usize, 4, 8, 16] {
        let (g, net, optimal) = fig10_gadget(clusters);
        let pfa = Pfa::new().construct(&g, &net)?;
        let idom_tree = idom_with_config(IteratedConfig {
            batched: false,
            ..IteratedConfig::default()
        })
        .construct(&g, &net)?;
        // Both are genuine arborescences — the quality difference is pure
        // wirelength.
        assert!(pfa.is_shortest_paths_tree(&g, &net)?);
        assert!(idom_tree.is_shortest_paths_tree(&g, &net)?);
        println!(
            "{clusters:>8} {:>8} {:>10.3} {:>10.3}",
            2 * clusters,
            pfa.cost().as_f64() / optimal.as_f64(),
            idom_tree.cost().as_f64() / optimal.as_f64()
        );
    }
    println!(
        "\nPFA's ratio grows linearly with the instance — the Ω(N) worst case —\n\
         while IDOM solves these instances optimally, as the paper observes.\n\
         The full parametric studies (including the grid staircase of Figure 11\n\
         and the set-cover gadget of Figure 14) run under:\n\
             cargo bench -p bench --bench figures"
    );
    Ok(())
}
