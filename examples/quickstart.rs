//! Quickstart: route one net with every algorithm of the paper.
//!
//! Builds a congested 20×20 routing grid (the paper's Table 1 substrate),
//! drops a 5-pin net on it, and routes it with all eight constructions —
//! the Steiner family (wirelength first) and the arborescence family
//! (source-sink delay first) — printing wirelength and maximum pathlength
//! for each.
//!
//! Run with: `cargo run --example quickstart`


use fpga_route::graph::random::random_net;
use fpga_route::steiner::congestion::{table1_grid, CongestionLevel};
use fpga_route::steiner::metrics::{measure, optimal_max_pathlength};
use fpga_route::steiner::{
    idom, ikmb, izel, Djka, Dom, Kmb, Net, Pfa, SteinerHeuristic, Zel,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = fpga_route::graph::rng::SplitMix64::seed_from_u64(42);
    // A 20×20 grid pre-congested by 10 routed nets (w̄ ≈ 1.28).
    let grid = table1_grid(CongestionLevel::Low, &mut rng)?;
    println!(
        "routing grid: 20x20, mean edge weight {:.2}",
        grid.graph().mean_edge_weight().unwrap_or(1.0)
    );

    let pins = random_net(grid.graph(), 5, &mut rng)?;
    let net = Net::from_terminals(pins)?;
    println!(
        "net: source {} with {} sinks",
        net.source(),
        net.sinks().len()
    );
    let optimal_radius = optimal_max_pathlength(grid.graph(), &net)?;
    println!("optimal source-sink radius: {optimal_radius}\n");

    let algorithms: Vec<(&str, Box<dyn SteinerHeuristic>)> = vec![
        ("KMB   (Steiner)", Box::new(Kmb::new())),
        ("ZEL   (Steiner)", Box::new(Zel::new())),
        ("IKMB  (Steiner, iterated)", Box::new(ikmb())),
        ("IZEL  (Steiner, iterated)", Box::new(izel())),
        ("DJKA  (arborescence)", Box::new(Djka::new())),
        ("DOM   (arborescence)", Box::new(Dom::new())),
        ("PFA   (arborescence)", Box::new(Pfa::new())),
        ("IDOM  (arborescence, iterated)", Box::new(idom())),
    ];
    println!("{:<32} {:>10} {:>10}", "algorithm", "wirelength", "max path");
    for (name, algo) in algorithms {
        let tree = algo.construct(grid.graph(), &net)?;
        let m = measure(&tree, &net)?;
        let spt = tree.is_shortest_paths_tree(grid.graph(), &net)?;
        println!(
            "{:<32} {:>10} {:>10}{}",
            name,
            m.wirelength.to_string(),
            m.max_pathlength.to_string(),
            if spt { "  (optimal radius)" } else { "" }
        );
    }
    Ok(())
}
