//! Critical-net routing: the wirelength vs pathlength tradeoff.
//!
//! The paper's motivation (§1): Steiner trees minimize wirelength but let
//! source-sink paths wander (bad for critical nets); arborescences pin
//! every source-sink path to the graph-optimal length at a small
//! wirelength premium. This example quantifies that tradeoff over a batch
//! of random nets on congested grids — a miniature of Table 1's headline
//! finding that PFA/IDOM buy optimal delay for almost no wire.
//!
//! Run with: `cargo run --release --example critical_net`


use fpga_route::graph::random::random_net;
use fpga_route::steiner::congestion::{table1_grid, CongestionLevel};
use fpga_route::steiner::metrics::{measure, optimal_max_pathlength, percent_vs};
use fpga_route::steiner::{idom, ikmb, Net, Pfa, SteinerHeuristic};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let nets = 20;
    let mut rows: Vec<(&str, f64, f64, usize)> = Vec::new();
    let algorithms: Vec<(&str, Box<dyn SteinerHeuristic>)> = vec![
        ("IKMB (wirelength-first)", Box::new(ikmb())),
        ("PFA  (delay-first)", Box::new(Pfa::new())),
        ("IDOM (delay-first)", Box::new(idom())),
    ];
    for (name, algo) in &algorithms {
        let mut rng_local = fpga_route::graph::rng::SplitMix64::seed_from_u64(7);
        let mut wire_pct = 0.0;
        let mut path_pct = 0.0;
        let mut optimal_radius_hits = 0usize;
        for _ in 0..nets {
            let grid = table1_grid(CongestionLevel::Medium, &mut rng_local)?;
            let pins = random_net(grid.graph(), 6, &mut rng_local)?;
            let net = Net::from_terminals(pins)?;
            // Reference: the wirelength-optimized IKMB tree.
            let reference = ikmb().construct(grid.graph(), &net)?;
            let tree = algo.construct(grid.graph(), &net)?;
            let m = measure(&tree, &net)?;
            let opt = optimal_max_pathlength(grid.graph(), &net)?;
            wire_pct += percent_vs(m.wirelength, reference.cost());
            path_pct += percent_vs(m.max_pathlength, opt);
            if m.max_pathlength == opt {
                optimal_radius_hits += 1;
            }
        }
        rows.push((
            name,
            wire_pct / nets as f64,
            path_pct / nets as f64,
            optimal_radius_hits,
        ));
    }
    println!(
        "{:<28} {:>12} {:>14} {:>16}",
        "algorithm", "wire vs IKMB", "path vs optimal", "optimal radius"
    );
    for (name, wire, path, hits) in rows {
        println!(
            "{name:<28} {:>11.2}% {:>13.2}% {:>12}/{nets}",
            wire, path, hits
        );
    }
    println!(
        "\nThe arborescence constructions reach the optimal radius on every net,\n\
         paying only a modest wirelength premium over the Steiner router —\n\
         the paper's case for using them on timing-critical nets."
    );
    Ok(())
}
