//! Route a full synthetic benchmark circuit onto a Xilinx 4000-style FPGA
//! and find its minimum channel width.
//!
//! This is the paper's §5 headline experiment in miniature: synthesize the
//! `9symml` profile (79 nets on an 11×10 array), find the smallest channel
//! width at which the IKMB-based router completes it, compare with the
//! two-pin-decomposition baseline (the structural stand-in for SEGA/GBP),
//! and print the routed chip as ASCII occupancy art.
//!
//! Run with: `cargo run --release --example chip_route`

use fpga_route::fpga::synth::{synthesize, xc4000_profiles};
use fpga_route::fpga::viz::render_ascii_occupancy;
use fpga_route::fpga::width::{minimum_channel_width, WidthSearch};
use fpga_route::fpga::{
    ArchSpec, BaselineConfig, BaselineRouter, Device, Router, RouterConfig,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = xc4000_profiles()
        .into_iter()
        .find(|p| p.name == "9symml")
        .expect("9symml is a published profile");
    let circuit = synthesize(&profile, 2, 1995)?;
    let (s, m, l) = circuit.pin_histogram();
    println!(
        "{}: {} nets on a {}x{} array (pins 2-3/4-10/>10: {}/{}/{})",
        circuit.name(),
        circuit.net_count(),
        circuit.rows(),
        circuit.cols(),
        s,
        m,
        l
    );

    let base = ArchSpec::xilinx4000(profile.rows, profile.cols, 4);
    let ours = minimum_channel_width(base, 4..=20, WidthSearch::Binary, |device| {
        Router::new(device, RouterConfig::default()).route(&circuit)
    })?;
    println!(
        "our router (IKMB): minimum channel width {} ({} routing attempts, {} passes at the final width)",
        ours.channel_width, ours.attempts, ours.outcome.passes
    );

    let baseline = minimum_channel_width(base, 4..=20, WidthSearch::Binary, |device| {
        BaselineRouter::new(device, BaselineConfig::default()).route(&circuit)
    })?;
    println!(
        "two-pin baseline:  minimum channel width {} (+{:.0}% vs ours)",
        baseline.channel_width,
        (baseline.channel_width as f64 / ours.channel_width as f64 - 1.0) * 100.0
    );
    println!(
        "wirelength: ours {} vs baseline {} at their respective widths",
        ours.outcome.total_wirelength, baseline.outcome.total_wirelength
    );

    let device = Device::new(base.with_channel_width(ours.channel_width))?;
    println!("\nchannel occupancy at W = {}:", ours.channel_width);
    println!("{}", render_ascii_occupancy(&device, &ours.outcome)?);
    Ok(())
}
