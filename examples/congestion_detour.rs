//! Congestion-aware detours (paper Figure 3).
//!
//! "Initially, shortest-path distances in the routing graph reflect
//! rectilinear distance; as nets are routed, paths may require detours, and
//! distances no longer reflect the rectilinear metric." This example routes
//! a stream of nets through a narrow bridge region, removing committed
//! resources after each, and shows the same source-sink pair's shortest
//! path lengthening as the fabric fills up — the reason the paper's
//! algorithms target arbitrary weighted graphs rather than rectilinear
//! geometry.
//!
//! Run with: `cargo run --example congestion_detour`

use fpga_route::graph::dijkstra::minpath;
use fpga_route::graph::{GridGraph, Weight};
use fpga_route::steiner::{Kmb, Net, SteinerHeuristic};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut grid = GridGraph::new(9, 9, Weight::UNIT)?;
    let probe_a = grid.node_at(4, 0)?;
    let probe_b = grid.node_at(4, 8)?;
    let rectilinear = grid.manhattan(probe_a, probe_b);
    println!(
        "probe pair: (4,0) -> (4,8), rectilinear distance {rectilinear} units"
    );

    // Vertical "traffic" nets crossing the middle row, routed and committed
    // one at a time; each reaches deeper, squeezing the probe pair's route
    // further toward the bottom edge.
    let kmb = Kmb::new();
    for (i, (col, depth)) in [(4usize, 4usize), (3, 5), (5, 6), (2, 7), (6, 7)]
        .into_iter()
        .enumerate()
    {
        let before = minpath(grid.graph(), probe_a, probe_b)?;
        let net = Net::new(grid.node_at(0, col)?, vec![grid.node_at(depth, col)?])?;
        let tree = kmb.construct(grid.graph(), &net)?;
        // Commit: the routed column is no longer available to other nets.
        let nodes: Vec<_> = tree.nodes().collect();
        for v in nodes {
            if v != probe_a && v != probe_b {
                grid.graph_mut().remove_node(v)?;
            }
        }
        let after = minpath(grid.graph(), probe_a, probe_b)?;
        println!(
            "after routing vertical net #{} (column {col}): probe distance {} -> {}",
            i + 1,
            before,
            after
        );
    }
    let final_dist = minpath(grid.graph(), probe_a, probe_b)?;
    println!(
        "\nthe probe pair's shortest path grew from {rectilinear} to {final_dist}: \
         graph-based routing sees the detours that rectilinear models miss"
    );
    Ok(())
}
