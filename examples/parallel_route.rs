//! Route the same circuit with the sequential and the parallel engine and
//! show they agree bit-for-bit, along with the per-pass batching counters.
//!
//! The parallel engine (`RouterConfig::threads >= 2`) splits each pass
//! into batches of spatially disjoint nets, routes a batch speculatively
//! on scoped worker threads against a snapshot of the pass graph, and
//! commits in order with conflict detection — so its results are
//! indistinguishable from the sequential router's.
//!
//! Run with: `cargo run --release --example parallel_route [threads] [width]`
//! (widths that are too narrow show the engines agreeing on failure too).

use fpga_route::fpga::synth::{synthesize, xc4000_profiles};
use fpga_route::fpga::width::minimum_channel_width_parallel;
use fpga_route::fpga::{ArchSpec, Device, Router, RouterConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let threads: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(4);
    let width: usize = std::env::args()
        .nth(2)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(12);
    let profile = xc4000_profiles()
        .into_iter()
        .find(|p| p.name == "term1")
        .expect("term1 is a published profile");
    let circuit = synthesize(&profile, 2, 1995)?;
    let device = Device::new(ArchSpec::xilinx4000(profile.rows, profile.cols, width))?;

    let sequential = Router::new(&device, RouterConfig::default()).route(&circuit);
    let parallel = Router::new(
        &device,
        RouterConfig {
            threads,
            ..RouterConfig::default()
        },
    )
    .route(&circuit);

    println!(
        "{}: {} nets, W = {width}, threads = {threads}",
        circuit.name(),
        circuit.net_count()
    );
    match (sequential, parallel) {
        (Ok(sequential), Ok(parallel)) => {
            println!(
                "sequential: {} passes, wirelength {}",
                sequential.passes, sequential.total_wirelength
            );
            println!(
                "parallel:   {} passes, wirelength {}",
                parallel.passes, parallel.total_wirelength
            );
            assert_eq!(sequential.trees, parallel.trees);
            println!("routed trees are identical: true");
            for t in &parallel.telemetry.passes {
                println!(
                    "  pass {}: {:>4} batches, {:>3} speculated, {:>3} accepted, {:>3} rerouted, {:.1?}, max occupancy {}/{}",
                    t.pass,
                    t.batches,
                    t.speculated,
                    t.accepted,
                    t.rerouted,
                    t.elapsed,
                    t.congestion.max_occupancy,
                    t.congestion.channel_width
                );
            }
        }
        (Err(s), Err(p)) => {
            println!("both engines report unroutable at W = {width}:");
            println!("  sequential: {s}");
            println!("  parallel:   {p}");
        }
        (seq, par) => {
            panic!("engines disagree: sequential {seq:?} vs parallel {par:?}");
        }
    }

    // The width search can probe channel widths concurrently too.
    let base = ArchSpec::xilinx4000(profile.rows, profile.cols, 4);
    let found = minimum_channel_width_parallel(base, 4..=16, threads, |device| {
        Router::new(
            device,
            RouterConfig {
                max_passes: 8,
                ..RouterConfig::default()
            },
        )
        .route(&circuit)
    })?;
    println!(
        "minimum channel width: {} ({} probe attempts)",
        found.channel_width, found.attempts
    );
    Ok(())
}
