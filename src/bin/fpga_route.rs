//! `fpga-route` — command-line front end to the router.
//!
//! ```text
//! fpga-route profiles
//! fpga-route route --circuit term1 --arch 4000 --width 9 [--algorithm ikmb]
//!                  [--seed 1995] [--passes 10] [--threads 0] [--scheduler wavefront]
//!                  [--mode ripup] [--pf-iterations 50] [--pf-selective]
//!                  [--pf-stale-slack-milli 8000] [--pf-history-decay-milli 0]
//!                  [--spec-exit-misses 4] [--spec-probe-period 32]
//!                  [--svg out.svg] [--trace out.jsonl] [--metrics]
//! fpga-route width --circuit term1 --arch 4000 [--min 3] [--max 24]
//!                  [--algorithm ikmb] [--baseline] [--threads 0]
//!                  [--scheduler wavefront] [--mode ripup] [--pf-iterations 50]
//!                  [--pf-selective] [--pf-stale-slack-milli 8000]
//!                  [--pf-history-decay-milli 0]
//!                  [--spec-exit-misses 4] [--spec-probe-period 32]
//!                  [--probe-threads 0] [--trace out.jsonl] [--metrics]
//! fpga-route net --rows 20 --cols 20 --pins 5 [--algorithm idom] [--seed 7]
//! fpga-route trace-check <file.jsonl>
//! fpga-route trace-report <file.jsonl>
//! fpga-route bench-diff <before.json> <after.json> [--threshold 5] [--warn-only]
//! ```

#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::error::Error;
use std::process::ExitCode;

use fpga_route::fpga::synth::{synthesize, xc3000_profiles, xc4000_profiles, CircuitProfile};
use fpga_route::fpga::width::{
    minimum_channel_width, minimum_channel_width_parallel, WidthSearch,
};
use fpga_route::fpga::{
    viz, ArchSpec, BaselineConfig, BaselineRouter, Device, RouteAlgorithm, RouteMode, Router,
    RouterConfig, SchedulerKind,
};
use fpga_route::graph::{GridGraph, Weight};
use fpga_route::steiner::metrics::{measure, optimal_max_pathlength};
use fpga_route::steiner::{
    idom, ikmb, izel, Djka, Dom, Kmb, Net, Pfa, SteinerHeuristic, Zel,
};
use fpga_route::trace::{Collector, JsonSink, JsonlSink, Trace, TraceSink};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  fpga-route profiles
  fpga-route route --circuit <name> --arch <3000|4000> --width <W>
                   [--algorithm <name>] [--seed <n>] [--passes <n>] [--threads <n>]
                   [--scheduler <wavefront|batch>] [--mode <ripup|pathfinder>]
                   [--pf-iterations <n>] [--pf-selective]
                   [--pf-stale-slack-milli <n>] [--pf-history-decay-milli <n>]
                   [--spec-exit-misses <n>] [--spec-probe-period <n>]
                   [--svg <file>] [--trace <file>] [--stream] [--metrics]
  fpga-route width --circuit <name> --arch <3000|4000>
                   [--min <W>] [--max <W>] [--algorithm <name>] [--baseline]
                   [--threads <n>] [--scheduler <wavefront|batch>]
                   [--mode <ripup|pathfinder>] [--pf-iterations <n>]
                   [--pf-selective] [--pf-stale-slack-milli <n>]
                   [--pf-history-decay-milli <n>]
                   [--spec-exit-misses <n>] [--spec-probe-period <n>]
                   [--probe-threads <n>] [--trace <file>] [--stream] [--metrics]
  fpga-route net   --rows <n> --cols <n> --pins <n> [--algorithm <name>] [--seed <n>]
  fpga-route trace-check <file.jsonl>
  fpga-route trace-report <file.jsonl>
  fpga-route bench-diff <before.json> <after.json> [--threshold <pct>] [--warn-only]

--threads: routing workers; 0 = automatic (sequential for small or
           few-large-net circuits, one worker per available core otherwise)
--scheduler: parallel engine when --threads > 1; wavefront (default) overlaps
             commit with speculation via a conflict DAG and work stealing,
             batch is the lockstep baseline — results are bit-identical
--mode: congestion strategy; ripup (default) tears up and reroutes blocked
        nets, pathfinder negotiates via present + history pricing with
        fully-parallel iterations — bit-identical across thread counts
--pf-iterations: pathfinder iteration budget before reporting unroutable
--pf-selective: pathfinder dirty-net mode — only nets touching over-capacity
                nodes (or gone stale) reroute each iteration, with delta
                repricing; iteration cost tracks remaining congestion
--pf-stale-slack-milli: history growth along a clean net's own tree before
                        selective mode reroutes it anyway (default 8000)
--pf-history-decay-milli: per-iteration multiplicative history decay out of
                          1000 (default 0 = off, bit-identical to no decay)
--probe-threads: concurrent width probes; 0 = one worker per available core
--trace: telemetry as JSONL (or a single JSON document for .json paths);
         `-` writes JSONL to stdout
--stream: append trace lines live as spans close (requires --trace, JSONL only)
--threshold: bench-diff regression gate in percent on *_us fields (default 5)
--warn-only: report bench-diff regressions without failing the exit code
algorithms: kmb zel ikmb izel djka dom pfa idom";

/// A flag a command accepts: name and whether it consumes a value
/// (`false` marks boolean presence flags like `--baseline`).
type FlagSpec = &'static [(&'static str, bool)];

const PROFILES_FLAGS: FlagSpec = &[];
const ROUTE_FLAGS: FlagSpec = &[
    ("circuit", true),
    ("arch", true),
    ("width", true),
    ("algorithm", true),
    ("seed", true),
    ("passes", true),
    ("threads", true),
    ("scheduler", true),
    ("mode", true),
    ("pf-iterations", true),
    ("pf-selective", false),
    ("pf-stale-slack-milli", true),
    ("pf-history-decay-milli", true),
    ("spec-exit-misses", true),
    ("spec-probe-period", true),
    ("svg", true),
    ("trace", true),
    ("stream", false),
    ("metrics", false),
];
const WIDTH_FLAGS: FlagSpec = &[
    ("circuit", true),
    ("arch", true),
    ("min", true),
    ("max", true),
    ("algorithm", true),
    ("seed", true),
    ("passes", true),
    ("baseline", false),
    ("threads", true),
    ("scheduler", true),
    ("mode", true),
    ("pf-iterations", true),
    ("pf-selective", false),
    ("pf-stale-slack-milli", true),
    ("pf-history-decay-milli", true),
    ("spec-exit-misses", true),
    ("spec-probe-period", true),
    ("probe-threads", true),
    ("trace", true),
    ("stream", false),
    ("metrics", false),
];
const NET_FLAGS: FlagSpec = &[
    ("rows", true),
    ("cols", true),
    ("pins", true),
    ("algorithm", true),
    ("seed", true),
];

fn dispatch(args: &[String]) -> Result<(), Box<dyn Error>> {
    let Some(command) = args.first() else {
        return Err("no command given".into());
    };
    match command.as_str() {
        "profiles" => {
            parse_flags(&args[1..], "profiles", PROFILES_FLAGS)?;
            cmd_profiles()
        }
        "route" => cmd_route(&parse_flags(&args[1..], "route", ROUTE_FLAGS)?),
        "width" => cmd_width(&parse_flags(&args[1..], "width", WIDTH_FLAGS)?),
        "net" => cmd_net(&parse_flags(&args[1..], "net", NET_FLAGS)?),
        "trace-check" => cmd_trace_check(&args[1..]),
        "trace-report" => cmd_trace_report(&args[1..]),
        "bench-diff" => cmd_bench_diff(&args[1..]),
        other => Err(format!("unknown command `{other}`").into()),
    }
}

/// Parses `--key [value]` pairs against the command's accepted flags,
/// rejecting anything the command does not understand by name.
fn parse_flags(
    args: &[String],
    command: &str,
    spec: FlagSpec,
) -> Result<HashMap<String, String>, Box<dyn Error>> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let Some(key) = arg.strip_prefix("--") else {
            return Err(format!("expected a --flag, found `{arg}`").into());
        };
        let Some(&(_, takes_value)) = spec.iter().find(|(name, _)| *name == key) else {
            let allowed: Vec<String> =
                spec.iter().map(|(name, _)| format!("--{name}")).collect();
            return Err(format!(
                "unknown flag `--{key}` for `{command}` (accepted: {})",
                if allowed.is_empty() {
                    "none".to_string()
                } else {
                    allowed.join(" ")
                }
            )
            .into());
        };
        if !takes_value {
            if flags.insert(key.to_string(), "true".to_string()).is_some() {
                return Err(format!("flag --{key} given more than once").into());
            }
            continue;
        }
        let Some(value) = it.next() else {
            return Err(format!("flag --{key} needs a value").into());
        };
        if flags.insert(key.to_string(), value.clone()).is_some() {
            return Err(format!(
                "flag --{key} given more than once (each sink flag takes a single destination)"
            )
            .into());
        }
    }
    Ok(flags)
}

fn get_usize(
    flags: &HashMap<String, String>,
    key: &str,
    default: Option<usize>,
) -> Result<usize, Box<dyn Error>> {
    match (flags.get(key), default) {
        (Some(v), _) => Ok(v.parse()?),
        (None, Some(d)) => Ok(d),
        (None, None) => Err(format!("missing required flag --{key}").into()),
    }
}

fn get_u64(flags: &HashMap<String, String>, key: &str, default: u64) -> Result<u64, Box<dyn Error>> {
    flags.get(key).map_or(Ok(default), |v| Ok(v.parse()?))
}

/// Resolves a CLI-side thread-count flag (`--probe-threads`): absent = 1
/// (sequential), `0` = one worker per available core. Router `--threads`
/// is *not* resolved here — `0` passes through so the router can pick a
/// worker count per circuit ([`fpga_route::fpga::auto_thread_count`]).
fn get_threads(flags: &HashMap<String, String>, key: &str) -> Result<usize, Box<dyn Error>> {
    let requested = get_usize(flags, key, Some(1))?;
    Ok(if requested == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        requested
    })
}

fn algorithm(flags: &HashMap<String, String>) -> Result<RouteAlgorithm, Box<dyn Error>> {
    match flags.get("algorithm").map(String::as_str).unwrap_or("ikmb") {
        "kmb" => Ok(RouteAlgorithm::Kmb),
        "zel" => Ok(RouteAlgorithm::Zel),
        "ikmb" => Ok(RouteAlgorithm::Ikmb),
        "izel" => Ok(RouteAlgorithm::Izel),
        "djka" => Ok(RouteAlgorithm::Djka),
        "dom" => Ok(RouteAlgorithm::Dom),
        "pfa" => Ok(RouteAlgorithm::Pfa),
        "idom" => Ok(RouteAlgorithm::Idom),
        other => Err(format!("unknown algorithm `{other}`").into()),
    }
}

fn scheduler(flags: &HashMap<String, String>) -> Result<SchedulerKind, Box<dyn Error>> {
    match flags.get("scheduler").map(String::as_str) {
        None | Some("wavefront") => Ok(SchedulerKind::Wavefront),
        Some("batch") => Ok(SchedulerKind::Batch),
        Some(other) => {
            Err(format!("unknown scheduler `{other}` (use wavefront or batch)").into())
        }
    }
}

fn mode(flags: &HashMap<String, String>) -> Result<RouteMode, Box<dyn Error>> {
    match flags.get("mode").map(String::as_str) {
        None | Some("ripup") => Ok(RouteMode::RipUp),
        Some("pathfinder") => Ok(RouteMode::Pathfinder),
        Some(other) => Err(format!("unknown mode `{other}` (use ripup or pathfinder)").into()),
    }
}

fn find_profile(name: &str) -> Result<CircuitProfile, Box<dyn Error>> {
    xc3000_profiles()
        .into_iter()
        .chain(xc4000_profiles())
        .find(|p| p.name == name)
        .ok_or_else(|| format!("unknown circuit `{name}` (see `fpga-route profiles`)").into())
}

fn arch_for(
    flags: &HashMap<String, String>,
    profile: &CircuitProfile,
    width: usize,
) -> Result<ArchSpec, Box<dyn Error>> {
    match flags.get("arch").map(String::as_str).unwrap_or("4000") {
        "3000" => Ok(ArchSpec::xilinx3000(profile.rows, profile.cols, width)),
        "4000" => Ok(ArchSpec::xilinx4000(profile.rows, profile.cols, width)),
        other => Err(format!("unknown architecture `{other}` (use 3000 or 4000)").into()),
    }
}

/// An installed collector plus whether it streams to the `--trace` file
/// live (in which case nothing is rewritten at finish).
struct CollectorSession {
    collector: Collector,
    streaming: bool,
}

/// Installs a trace collector when `--trace`/`--metrics` ask for one.
/// With `--stream`, the collector appends JSONL to the `--trace` file as
/// spans close instead of buffering the whole run.
fn maybe_collector(
    flags: &HashMap<String, String>,
) -> Result<Option<CollectorSession>, Box<dyn Error>> {
    if flags.contains_key("stream") {
        let path = flags
            .get("trace")
            .ok_or("--stream needs --trace <file> as the JSONL destination")?;
        if path.ends_with(".json") {
            return Err("--stream emits JSONL; use a non-.json --trace path".into());
        }
        let sink: Box<dyn std::io::Write + Send> = if path == "-" {
            Box::new(std::io::stdout())
        } else {
            Box::new(std::fs::File::create(path)?)
        };
        return Ok(Some(CollectorSession {
            collector: Collector::install_streaming(sink)?,
            streaming: true,
        }));
    }
    if flags.contains_key("trace") || flags.contains_key("metrics") {
        return Ok(Some(CollectorSession {
            collector: Collector::install(),
            streaming: false,
        }));
    }
    Ok(None)
}

/// Finishes an installed collector: writes `--trace` output (JSONL, or a
/// single JSON document for `.json` paths; already on disk when
/// streaming) and prints `--metrics`.
fn finish_collector(
    session: Option<CollectorSession>,
    flags: &HashMap<String, String>,
) -> Result<(), Box<dyn Error>> {
    let Some(session) = session else {
        return Ok(());
    };
    let trace = session.collector.finish();
    if let Some(path) = flags.get("trace") {
        if session.streaming {
            if path != "-" {
                println!("telemetry streamed to {path}");
            }
        } else {
            write_trace(&trace, path)?;
            if path != "-" {
                println!("telemetry written to {path}");
            }
        }
    }
    if flags.contains_key("metrics") {
        print_human(flags, &trace.summary());
    }
    Ok(())
}

/// Prints human-readable run output: to stderr when `--trace -` owns
/// stdout for JSONL, to stdout otherwise — so a piped
/// `--trace - | fpga-route trace-report -` sees pure JSONL.
fn print_human(flags: &HashMap<String, String>, text: &str) {
    if flags.get("trace").is_some_and(|p| p == "-") {
        eprint!("{text}");
    } else {
        print!("{text}");
    }
}

/// Writes the trace to `path`: a single JSON document for `.json` paths,
/// JSONL otherwise; `-` sends JSONL to stdout.
fn write_trace(trace: &Trace, path: &str) -> Result<(), Box<dyn Error>> {
    let mut buf = Vec::new();
    if path.ends_with(".json") {
        JsonSink.emit(trace, &mut buf)?;
    } else {
        JsonlSink.emit(trace, &mut buf)?;
    }
    if path == "-" {
        use std::io::Write as _;
        std::io::stdout().write_all(&buf)?;
    } else {
        std::fs::write(path, buf)?;
    }
    Ok(())
}

fn cmd_profiles() -> Result<(), Box<dyn Error>> {
    println!("{:<10} {:>6} {:>6} {:>6} {:>7} {:>8}  family", "name", "rows", "cols", "nets", "2-3", "4-10/>10");
    for (family, profiles) in [("3000", xc3000_profiles()), ("4000", xc4000_profiles())] {
        for p in profiles {
            println!(
                "{:<10} {:>6} {:>6} {:>6} {:>7} {:>5}/{:<3} {family}",
                p.name,
                p.rows,
                p.cols,
                p.net_count(),
                p.nets_2_3,
                p.nets_4_10,
                p.nets_over_10
            );
        }
    }
    Ok(())
}

fn cmd_route(flags: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    let name = flags
        .get("circuit")
        .ok_or("missing required flag --circuit")?;
    let profile = find_profile(name)?;
    let width = get_usize(flags, "width", None)?;
    let seed = get_u64(flags, "seed", 1995)?;
    let passes = get_usize(flags, "passes", Some(10))?;
    // `0` passes through: the router sizes the worker pool to the
    // circuit (fpga::auto_thread_count).
    let threads = get_usize(flags, "threads", Some(1))?;
    let circuit = synthesize(&profile, 2, seed)?;
    let device = Device::new(arch_for(flags, &profile, width)?)?;
    let defaults = RouterConfig::default();
    let config = RouterConfig {
        algorithm: algorithm(flags)?,
        max_passes: passes,
        threads,
        scheduler: scheduler(flags)?,
        mode: mode(flags)?,
        pf_max_iterations: get_usize(flags, "pf-iterations", Some(defaults.pf_max_iterations))?,
        pf_selective: flags.contains_key("pf-selective"),
        pf_stale_slack_milli: get_u64(
            flags,
            "pf-stale-slack-milli",
            defaults.pf_stale_slack_milli,
        )?,
        pf_history_decay_milli: get_u64(
            flags,
            "pf-history-decay-milli",
            defaults.pf_history_decay_milli,
        )?,
        spec_exit_misses: get_usize(flags, "spec-exit-misses", Some(defaults.spec_exit_misses))?,
        spec_probe_period: get_usize(flags, "spec-probe-period", Some(defaults.spec_probe_period))?,
        ..defaults
    };
    let collector = maybe_collector(flags)?;
    let outcome = Router::new(&device, config.clone()).route(&circuit)?;
    let thread_desc = if threads == 0 {
        "auto".to_string()
    } else {
        threads.to_string()
    };
    print_human(
        flags,
        &format!(
            "{name}: routed {} nets at W = {width} with {} in {} pass(es), {} thread(s)\n\
             total wirelength {}, critical pathlength {}\n",
            circuit.net_count(),
            config.algorithm.label(),
            outcome.passes,
            thread_desc,
            outcome.total_wirelength,
            outcome.critical_pathlength()
        ),
    );
    if let Some(svg_path) = flags.get("svg") {
        std::fs::write(svg_path, viz::render_svg(&device, &circuit, &outcome)?)?;
        print_human(flags, &format!("rendering written to {svg_path}\n"));
    }
    finish_collector(collector, flags)
}

fn cmd_width(flags: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    let name = flags
        .get("circuit")
        .ok_or("missing required flag --circuit")?;
    let profile = find_profile(name)?;
    let min = get_usize(flags, "min", Some(3))?;
    let max = get_usize(flags, "max", Some(24))?;
    let seed = get_u64(flags, "seed", 1995)?;
    let passes = get_usize(flags, "passes", Some(10))?;
    // Router threads pass through raw (0 = per-circuit auto); probe
    // parallelism is a CLI concern and resolves here.
    let threads = get_usize(flags, "threads", Some(1))?;
    let probe_threads = get_threads(flags, "probe-threads")?;
    let circuit = synthesize(&profile, 2, seed)?;
    let base = arch_for(flags, &profile, min)?;
    let use_baseline = flags.contains_key("baseline");
    let algo = algorithm(flags)?;
    let sched = scheduler(flags)?;
    let route_mode = mode(flags)?;
    let defaults = RouterConfig::default();
    let pf_max_iterations = get_usize(flags, "pf-iterations", Some(defaults.pf_max_iterations))?;
    let pf_selective = flags.contains_key("pf-selective");
    let pf_stale_slack_milli =
        get_u64(flags, "pf-stale-slack-milli", defaults.pf_stale_slack_milli)?;
    let pf_history_decay_milli = get_u64(
        flags,
        "pf-history-decay-milli",
        defaults.pf_history_decay_milli,
    )?;
    let spec_exit_misses = get_usize(flags, "spec-exit-misses", Some(defaults.spec_exit_misses))?;
    let spec_probe_period = get_usize(flags, "spec-probe-period", Some(defaults.spec_probe_period))?;
    let route = |device: &Device| {
        if use_baseline {
            BaselineRouter::new(
                device,
                BaselineConfig {
                    max_passes: passes,
                    ..BaselineConfig::default()
                },
            )
            .route(&circuit)
        } else {
            Router::new(
                device,
                RouterConfig {
                    algorithm: algo,
                    max_passes: passes,
                    threads,
                    scheduler: sched,
                    mode: route_mode,
                    pf_max_iterations,
                    pf_selective,
                    pf_stale_slack_milli,
                    pf_history_decay_milli,
                    spec_exit_misses,
                    spec_probe_period,
                    ..RouterConfig::default()
                },
            )
            .route(&circuit)
        }
    };
    let collector = maybe_collector(flags)?;
    let found = if probe_threads > 1 {
        minimum_channel_width_parallel(base, min..=max, probe_threads, route)?
    } else {
        minimum_channel_width(base, min..=max, WidthSearch::Binary, route)?
    };
    print_human(
        flags,
        &format!(
            "{name}: minimum channel width {} with {} ({} routing attempts, wirelength {})\n",
            found.channel_width,
            if use_baseline { "2PIN baseline" } else { algo.label() },
            found.attempts,
            found.outcome.total_wirelength
        ),
    );
    finish_collector(collector, flags)
}

fn cmd_net(flags: &HashMap<String, String>) -> Result<(), Box<dyn Error>> {
    let rows = get_usize(flags, "rows", Some(20))?;
    let cols = get_usize(flags, "cols", Some(20))?;
    let pins = get_usize(flags, "pins", Some(5))?;
    let seed = get_u64(flags, "seed", 7)?;
    let grid = GridGraph::new(rows, cols, Weight::UNIT)?;
    let mut rng = fpga_route::graph::rng::SplitMix64::seed_from_u64(seed);
    let terminals = fpga_route::graph::random::random_net(grid.graph(), pins, &mut rng)?;
    let net = Net::from_terminals(terminals)?;
    let opt_radius = optimal_max_pathlength(grid.graph(), &net)?;
    let contenders: Vec<(&str, Box<dyn SteinerHeuristic>)> = match flags.get("algorithm") {
        None => vec![
            ("KMB", Box::new(Kmb::new())),
            ("ZEL", Box::new(Zel::new())),
            ("IKMB", Box::new(ikmb())),
            ("IZEL", Box::new(izel())),
            ("DJKA", Box::new(Djka::new())),
            ("DOM", Box::new(Dom::new())),
            ("PFA", Box::new(Pfa::new())),
            ("IDOM", Box::new(idom())),
        ],
        Some(_) => {
            let algo = algorithm(flags)?;
            vec![(
                algo.label(),
                fpga_route::fpga::RouteAlgorithm::heuristic(
                    algo,
                    fpga_route::steiner::CandidatePool::All,
                ),
            )]
        }
    };
    println!(
        "net: {pins} pins on a {rows}x{cols} grid (seed {seed}), optimal radius {opt_radius}"
    );
    println!("{:<8} {:>10} {:>10}", "algo", "wirelength", "max path");
    for (label, algo) in contenders {
        let tree = algo.construct(grid.graph(), &net)?;
        let m = measure(&tree, &net)?;
        println!(
            "{label:<8} {:>10} {:>10}",
            m.wirelength.to_string(),
            m.max_pathlength.to_string()
        );
    }
    Ok(())
}

/// Validates every line of a JSONL telemetry file (used by CI to check
/// `--trace` output without external tooling). Reports the first
/// malformed line by number.
fn cmd_trace_check(args: &[String]) -> Result<(), Box<dyn Error>> {
    let [path] = args else {
        return Err("trace-check takes exactly one argument: the JSONL file to validate".into());
    };
    let text = std::fs::read_to_string(path)?;
    let mut checked = 0usize;
    let mut records = fpga_route::trace::check::RecordCheck::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        fpga_route::trace::json::validate(line)
            .map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        // Semantic pass: every typed record must be a known type with
        // sound fields (counters/histograms/gauges must name real
        // variants, durations must be finite non-negative integers,
        // congestion histograms must be non-empty).
        records
            .line(line)
            .map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        checked += 1;
    }
    if checked == 0 {
        return Err(format!("{path}: no JSON lines found").into());
    }
    println!("{path}: {checked} JSON lines OK");
    Ok(())
}

/// Renders a JSONL telemetry file as human-readable text tables: span
/// profile, latency histograms, gauges, PathFinder convergence, and
/// scheduler timelines. `-` reads from stdin.
fn cmd_trace_report(args: &[String]) -> Result<(), Box<dyn Error>> {
    let [path] = args else {
        return Err(
            "trace-report takes exactly one argument: the JSONL file to render (`-` = stdin)"
                .into(),
        );
    };
    let text = if path == "-" {
        use std::io::Read as _;
        let mut buf = String::new();
        std::io::stdin().read_to_string(&mut buf)?;
        buf
    } else {
        std::fs::read_to_string(path)?
    };
    let rendered = fpga_route::trace::report::render_report(&text)
        .map_err(|e| format!("{path}: {e}"))?;
    print!("{rendered}");
    Ok(())
}

/// Diffs two `BENCH_*.json` result files and fails (nonzero exit) when
/// any `*_us` timing field regressed past the threshold, unless
/// `--warn-only` downgrades the failure to a stderr warning.
fn cmd_bench_diff(args: &[String]) -> Result<(), Box<dyn Error>> {
    let mut paths: Vec<&String> = Vec::new();
    let mut threshold_pct = 5.0f64;
    let mut warn_only = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold" => {
                let value = it.next().ok_or("flag --threshold needs a value")?;
                threshold_pct = value
                    .parse()
                    .map_err(|_| format!("--threshold: not a number: `{value}`"))?;
            }
            "--warn-only" => warn_only = true,
            other if other.starts_with("--") => {
                return Err(format!(
                    "unknown flag `{other}` for `bench-diff` (accepted: --threshold --warn-only)"
                )
                .into());
            }
            _ => paths.push(arg),
        }
    }
    let [before_path, after_path] = paths[..] else {
        return Err("bench-diff takes two positional arguments: <before.json> <after.json>".into());
    };
    let before = std::fs::read_to_string(before_path)?;
    let after = std::fs::read_to_string(after_path)?;
    let report = fpga_route::trace::report::bench_diff(&before, &after, threshold_pct)?;
    print!("{}", report.rendered);
    if report.regressions.is_empty() {
        return Ok(());
    }
    let lines: Vec<String> = report
        .regressions
        .iter()
        .map(|r| {
            format!(
                "{}.{}: {} -> {} (+{:.1}%)",
                r.circuit, r.field, r.before, r.after, r.delta_pct
            )
        })
        .collect();
    if warn_only {
        eprintln!(
            "warning: {} field(s) regressed past {threshold_pct}%: {}",
            report.regressions.len(),
            lines.join(", ")
        );
        return Ok(());
    }
    Err(format!(
        "{} field(s) regressed past {threshold_pct}%: {}",
        report.regressions.len(),
        lines.join(", ")
    )
    .into())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(pairs: &[(&str, &str)]) -> HashMap<String, String> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn flag_parser_round_trips() {
        let parsed = parse_flags(
            &[
                "--circuit".into(),
                "term1".into(),
                "--min".into(),
                "9".into(),
                "--baseline".into(),
            ],
            "width",
            WIDTH_FLAGS,
        )
        .unwrap();
        assert_eq!(parsed.get("circuit").unwrap(), "term1");
        assert_eq!(parsed.get("min").unwrap(), "9");
        assert_eq!(parsed.get("baseline").unwrap(), "true");
    }

    #[test]
    fn flag_parser_rejects_malformed_input() {
        assert!(parse_flags(&["circuit".into()], "route", ROUTE_FLAGS).is_err());
        assert!(parse_flags(&["--width".into()], "route", ROUTE_FLAGS).is_err());
    }

    #[test]
    fn flag_parser_rejects_unknown_flags_by_name() {
        // A flag valid for one command is still rejected for another, and
        // the error names the offending flag and the command.
        let err = parse_flags(&["--width".into(), "9".into()], "net", NET_FLAGS).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("--width"), "error must name the flag: {msg}");
        assert!(msg.contains("`net`"), "error must name the command: {msg}");
        assert!(msg.contains("--rows"), "error must list accepted flags: {msg}");

        let err = parse_flags(
            &["--typo-flag".into(), "1".into()],
            "route",
            ROUTE_FLAGS,
        )
        .unwrap_err();
        assert!(err.to_string().contains("--typo-flag"));

        // Commands with no flags report that none are accepted.
        let err = parse_flags(&["--width".into(), "9".into()], "profiles", PROFILES_FLAGS)
            .unwrap_err();
        assert!(err.to_string().contains("none"));
    }

    #[test]
    fn boolean_flags_take_no_value() {
        // `--metrics` must not swallow the next flag as its value.
        let parsed = parse_flags(
            &["--metrics".into(), "--circuit".into(), "term1".into()],
            "route",
            ROUTE_FLAGS,
        )
        .unwrap();
        assert_eq!(parsed.get("metrics").unwrap(), "true");
        assert_eq!(parsed.get("circuit").unwrap(), "term1");
    }

    #[test]
    fn scheduler_names_resolve() {
        assert_eq!(scheduler(&flags(&[])).unwrap(), SchedulerKind::Wavefront);
        assert_eq!(
            scheduler(&flags(&[("scheduler", "wavefront")])).unwrap(),
            SchedulerKind::Wavefront
        );
        assert_eq!(
            scheduler(&flags(&[("scheduler", "batch")])).unwrap(),
            SchedulerKind::Batch
        );
        assert!(scheduler(&flags(&[("scheduler", "bogus")])).is_err());
    }

    #[test]
    fn mode_names_resolve() {
        assert_eq!(mode(&flags(&[])).unwrap(), RouteMode::RipUp);
        assert_eq!(mode(&flags(&[("mode", "ripup")])).unwrap(), RouteMode::RipUp);
        assert_eq!(
            mode(&flags(&[("mode", "pathfinder")])).unwrap(),
            RouteMode::Pathfinder
        );
        assert!(mode(&flags(&[("mode", "bogus")])).is_err());
    }

    #[test]
    fn algorithm_names_resolve() {
        for (name, expect) in [
            ("kmb", RouteAlgorithm::Kmb),
            ("ikmb", RouteAlgorithm::Ikmb),
            ("pfa", RouteAlgorithm::Pfa),
            ("idom", RouteAlgorithm::Idom),
        ] {
            assert_eq!(algorithm(&flags(&[("algorithm", name)])).unwrap(), expect);
        }
        assert_eq!(algorithm(&flags(&[])).unwrap(), RouteAlgorithm::Ikmb);
        assert!(algorithm(&flags(&[("algorithm", "bogus")])).is_err());
    }

    #[test]
    fn profiles_resolve_and_unknowns_error() {
        assert_eq!(find_profile("busc").unwrap().rows, 12);
        assert_eq!(find_profile("term1").unwrap().cols, 9);
        assert!(find_profile("nonesuch").is_err());
    }

    #[test]
    fn numeric_flags_parse_with_defaults() {
        let f = flags(&[("width", "11")]);
        assert_eq!(get_usize(&f, "width", None).unwrap(), 11);
        assert_eq!(get_usize(&f, "passes", Some(10)).unwrap(), 10);
        assert!(get_usize(&f, "missing", None).is_err());
        assert_eq!(get_u64(&f, "seed", 1995).unwrap(), 1995);
    }

    #[test]
    fn selective_pathfinder_flags_parse() {
        // `--pf-selective` is a presence flag; the two tuning knobs take
        // values and default to RouterConfig's.
        let parsed = parse_flags(
            &[
                "--pf-selective".into(),
                "--pf-stale-slack-milli".into(),
                "4000".into(),
                "--pf-history-decay-milli".into(),
                "200".into(),
            ],
            "route",
            ROUTE_FLAGS,
        )
        .unwrap();
        assert!(parsed.contains_key("pf-selective"));
        assert_eq!(get_u64(&parsed, "pf-stale-slack-milli", 8000).unwrap(), 4000);
        assert_eq!(get_u64(&parsed, "pf-history-decay-milli", 0).unwrap(), 200);
        let defaults = RouterConfig::default();
        assert!(!defaults.pf_selective);
        assert_eq!(
            get_u64(&flags(&[]), "pf-stale-slack-milli", defaults.pf_stale_slack_milli).unwrap(),
            8000
        );
        assert_eq!(
            get_u64(
                &flags(&[]),
                "pf-history-decay-milli",
                defaults.pf_history_decay_milli
            )
            .unwrap(),
            0
        );
        // The width command accepts the same trio.
        assert!(parse_flags(&["--pf-selective".into()], "width", WIDTH_FLAGS).is_ok());
    }

    #[test]
    fn probe_thread_flag_resolves_zero_to_available_cores() {
        assert_eq!(get_threads(&flags(&[]), "probe-threads").unwrap(), 1);
        assert_eq!(
            get_threads(&flags(&[("probe-threads", "3")]), "probe-threads").unwrap(),
            3
        );
        assert!(
            get_threads(&flags(&[("probe-threads", "0")]), "probe-threads").unwrap() >= 1
        );
        assert!(get_threads(&flags(&[("probe-threads", "x")]), "probe-threads").is_err());
        // Router --threads is NOT resolved CLI-side: 0 reaches the
        // RouterConfig untouched so the router can auto-size per circuit.
        assert_eq!(get_usize(&flags(&[("threads", "0")]), "threads", Some(1)).unwrap(), 0);
    }

    #[test]
    fn stream_flag_requires_a_jsonl_trace_path() {
        assert!(maybe_collector(&flags(&[("stream", "true")])).is_err());
        assert!(maybe_collector(&flags(&[("stream", "true"), ("trace", "t.json")])).is_err());
        assert!(maybe_collector(&flags(&[])).unwrap().is_none());
    }

    #[test]
    fn net_command_runs_end_to_end() {
        cmd_net(&flags(&[
            ("rows", "6"),
            ("cols", "6"),
            ("pins", "4"),
            ("algorithm", "idom"),
        ]))
        .unwrap();
    }

    #[test]
    fn duplicate_flags_are_rejected_with_a_clear_error() {
        let err = parse_flags(
            &[
                "--trace".into(),
                "a.jsonl".into(),
                "--trace".into(),
                "b.jsonl".into(),
            ],
            "route",
            ROUTE_FLAGS,
        )
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("--trace"), "error names the flag: {msg}");
        assert!(msg.contains("more than once"), "error says why: {msg}");

        let err = parse_flags(
            &["--metrics".into(), "--metrics".into()],
            "route",
            ROUTE_FLAGS,
        )
        .unwrap_err();
        assert!(err.to_string().contains("--metrics"));
    }

    #[test]
    fn dash_trace_path_means_stdout() {
        // `-` is not a `.json` path, so the trace goes out as JSONL;
        // write_trace must not try to create a file literally named `-`.
        let trace = Trace::default();
        write_trace(&trace, "-").unwrap();
        assert!(!std::path::Path::new("-").exists(), "no file named `-`");
    }

    #[test]
    fn trace_report_renders_observability_records() {
        let dir = std::env::temp_dir();
        let path = dir.join("fpga_route_trace_report_test.jsonl");
        std::fs::write(
            &path,
            concat!(
                "{\"type\":\"meta\",\"version\":1}\n",
                "{\"type\":\"histogram\",\"name\":\"net_route_ns\",\"count\":2,\"sum\":300,",
                "\"mean\":150,\"p50\":100,\"p95\":200,\"p99\":200,\"max\":200}\n",
                "{\"type\":\"convergence\",\"iteration\":1,\"overcapacity\":4,",
                "\"history_milli\":0,\"nets_rerouted\":9,\"present_milli\":500,",
                "\"dirty_nets\":9}\n",
            ),
        )
        .unwrap();
        cmd_trace_report(&[path.to_string_lossy().into_owned()]).unwrap();
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn bench_diff_gates_on_regressions_unless_warn_only() {
        let dir = std::env::temp_dir();
        let before = dir.join("fpga_route_bench_diff_before.json");
        let after = dir.join("fpga_route_bench_diff_after.json");
        std::fs::write(
            &before,
            "{\"circuits\":[{\"name\":\"term1\",\"pathfinder_us\":1000,\"pathfinder_width\":9}]}",
        )
        .unwrap();
        std::fs::write(
            &after,
            "{\"circuits\":[{\"name\":\"term1\",\"pathfinder_us\":2000,\"pathfinder_width\":9}]}",
        )
        .unwrap();
        let b = before.to_string_lossy().into_owned();
        let a = after.to_string_lossy().into_owned();
        // Identical files never gate.
        cmd_bench_diff(&[b.clone(), b.clone()]).unwrap();
        // A 100% slowdown on a *_us field fails past the default 5%...
        let err = cmd_bench_diff(&[b.clone(), a.clone()]).unwrap_err();
        assert!(err.to_string().contains("pathfinder_us"), "{err}");
        // ...passes with a generous threshold...
        cmd_bench_diff(&[b.clone(), a.clone(), "--threshold".into(), "150".into()]).unwrap();
        // ...and is downgraded to a warning by --warn-only.
        cmd_bench_diff(&[b.clone(), a.clone(), "--warn-only".into()]).unwrap();
        // Unknown flags and missing positionals are rejected.
        assert!(cmd_bench_diff(&[b.clone(), a.clone(), "--bogus".into()]).is_err());
        assert!(cmd_bench_diff(std::slice::from_ref(&b)).is_err());
        let _ = std::fs::remove_file(before);
        let _ = std::fs::remove_file(after);
    }

    #[test]
    fn trace_check_validates_and_rejects() {
        let dir = std::env::temp_dir();
        let good = dir.join("fpga_route_trace_check_good.jsonl");
        let bad = dir.join("fpga_route_trace_check_bad.jsonl");
        std::fs::write(&good, "{\"type\":\"meta\"}\n{\"a\":[1,2]}\n").unwrap();
        std::fs::write(&bad, "{\"type\":\"meta\"}\nnot json\n").unwrap();
        cmd_trace_check(&[good.to_string_lossy().into_owned()]).unwrap();
        let err = cmd_trace_check(&[bad.to_string_lossy().into_owned()]).unwrap_err();
        assert!(err.to_string().contains(":2"), "names the bad line: {err}");
        assert!(cmd_trace_check(&[]).is_err());
        let _ = std::fs::remove_file(good);
        let _ = std::fs::remove_file(bad);
    }
}
