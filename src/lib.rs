//! # fpga-route
//!
//! Facade crate for the reproduction of *New Performance-Driven FPGA
//! Routing Algorithms* (Alexander & Robins, DAC 1995).
//!
//! Re-exports the three library layers:
//!
//! * [`graph`] ([`route-graph`](route_graph)) — weighted routing graphs,
//!   Dijkstra, MSTs, distance graphs, grid generators.
//! * [`steiner`] ([`steiner-route`](steiner_route)) — the paper's
//!   algorithms: KMB, ZEL, the IGMST iterated template (IKMB/IZEL), DJKA,
//!   DOM, PFA, and IDOM, plus exact oracles and the congestion workload
//!   model.
//! * [`fpga`] ([`fpga-device`](fpga_device)) — the symmetrical-array FPGA
//!   device model, synthetic benchmark circuits, and the detailed router.
//! * [`trace`] ([`route-trace`](route_trace)) — zero-dependency telemetry:
//!   hierarchical spans, algorithm counters, congestion snapshots, and
//!   JSON/JSONL emission.
//!
//! See the `examples/` directory for runnable walkthroughs, starting with
//! `quickstart.rs`.

#![forbid(unsafe_code)]

pub use fpga_device as fpga;
pub use route_graph as graph;
pub use route_trace as trace;
pub use steiner_route as steiner;
